//! The daemon event loop: a bounded request queue fed by a reader thread,
//! one JSON response line per request, graceful shutdown, and an optional
//! per-event latency report (`BENCH_recover.json` format).
//!
//! Transport-agnostic: [`Daemon::run`] takes any `BufRead` + `Write` pair,
//! so the same loop serves stdin/stdout pipes, Unix-socket connections
//! (see `nws serve --socket`), and in-memory test harnesses.
//!
//! Fault tolerance (DESIGN.md §11): every request is handled under
//! `catch_unwind` with the state cloned beforehand, so a panicking handler
//! answers an error response and rolls back instead of killing the loop;
//! store I/O failures downgrade persistence to a *degraded* (non-durable)
//! mode rather than aborting; and when the bounded queue is full the
//! reader *sheds* the request with an `overloaded` error plus a
//! `retry_after_ms` hint instead of back-pressuring the peer forever.

use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::net::{Job, Registry, Server};
use crate::persist::{OpenError, PersistConfig, RecoveryReport, StateStore};
use crate::protocol::{parse_incoming, Incoming, Request};
use crate::read_path::{ReadHandle, ReadSnapshot, SnapshotCell};
use crate::sli::{Kind, RateWindows};
use crate::state::{ServiceState, SolveReport};
use crate::ServiceError;
use nws_obs::{Recorder, Snapshot};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Entries the idempotency dedup window retains (FIFO by first commit).
/// Sized for the realistic in-flight window — a client retries the *one*
/// mutation it never got acked, not a thousand — while bounding daemon
/// memory against hostile key churn.
const DEDUP_WINDOW: usize = 1024;

/// Daemon tunables.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Bounded request-queue capacity; 0 means the default (64). When the
    /// queue is full the reader thread *sheds* the request: the peer gets
    /// an immediate `overloaded` error with a `retry_after_ms` hint
    /// instead of silent back-pressure.
    pub queue_capacity: usize,
    /// Run a from-scratch cold solve next to every warm re-solve and report
    /// both (iteration savings + latency comparison). Doubles solve cost;
    /// meant for benchmarking and acceptance runs.
    pub shadow_cold: bool,
    /// Write a `BENCH_recover.json`-style per-event latency report here when
    /// the daemon exits.
    pub bench_out: Option<String>,
    /// Write a Prometheus-style text exposition of the observability
    /// snapshot here when the daemon exits (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Append the aggregated span tree to the exposition (`--trace`).
    pub trace: bool,
    /// Persist state to a durable store (`--state-dir`): journal every
    /// state-changing command to a write-ahead log, snapshot periodically
    /// and on exit, and recover on boot.
    pub persist: Option<PersistConfig>,
    /// Wall-clock budget per re-solve (`--solve-deadline-ms`). A solve
    /// that exhausts it returns its best feasible iterate marked
    /// *degraded*; the daemon then escalates (cold retry, then last-good
    /// fallback) rather than blocking the event loop indefinitely.
    pub solve_deadline_ms: Option<u64>,
    /// Batching window for demand updates in the multi-connection server
    /// (`--coalesce-ms`): bursts of `update_demand`/`update_demands`
    /// arriving within the window merge last-writer-wins per OD into one
    /// epoch rebuild + one warm re-solve; every merged request is still
    /// acknowledged individually. 0 disables coalescing. The
    /// single-stream [`Daemon::run`] loop ignores this (strict per-line
    /// transactional semantics).
    pub coalesce_ms: u64,
}

/// One re-solve-triggering event, for the latency report.
#[derive(Debug, Clone)]
struct EventRecord {
    seq: u64,
    cmd: &'static str,
    warm: bool,
    iterations: usize,
    wall_ms: f64,
    cold_iterations: Option<usize>,
    cold_ms: Option<f64>,
    objective: f64,
    degraded: bool,
}

/// Demand updates buffered inside the coalescing window, awaiting one
/// merged flush (see [`Daemon::flush_coalesced`]).
#[derive(Debug, Default)]
struct CoalesceBuffer {
    /// Last-writer-wins per OD, in first-seen order.
    merged: Vec<(String, f64)>,
    /// Every buffered request with its reply channel: each is acknowledged
    /// individually when the batch commits.
    replies: Vec<(Incoming, mpsc::Sender<Json>)>,
    /// When the window closes (set by the first buffered request).
    deadline: Option<Instant>,
}

/// The bounded idempotency-dedup window behind exactly-once mutations
/// (DESIGN.md §15): `request_id` → the original acknowledgement, evicted
/// FIFO past [`DEDUP_WINDOW`] entries. A duplicate delivery of a
/// committed mutation replays the stored ack *verbatim* instead of
/// re-applying — `None` marks an id recovered from the WAL (the original
/// ack died with the previous process), for which a synthesized
/// `duplicate` ack is answered instead.
#[derive(Debug, Default)]
struct DedupWindow {
    acks: HashMap<String, Option<Json>>,
    order: VecDeque<String>,
}

impl DedupWindow {
    /// `Some(cached)` when `id` was already committed: `Some(Some(ack))`
    /// replays the original ack, `Some(None)` means committed before a
    /// crash (ack lost with the process).
    fn lookup(&self, id: &str) -> Option<&Option<Json>> {
        self.acks.get(id)
    }

    /// Remembers a committed id (and its ack, when still known). FIFO
    /// eviction past the cap; re-remembering an id refreshes the ack but
    /// not its eviction position.
    fn remember(&mut self, id: &str, ack: Option<Json>) {
        if self.acks.insert(id.to_string(), ack).is_none() {
            self.order.push_back(id.to_string());
            while self.order.len() > DEDUP_WINDOW {
                if let Some(evicted) = self.order.pop_front() {
                    self.acks.remove(&evicted);
                }
            }
        }
    }
}

/// What a completed [`Daemon::run`] reports back to the embedder.
#[derive(Debug, Clone)]
pub struct DaemonSummary {
    /// Requests processed (including malformed lines; excludes shed ones).
    pub requests: u64,
    /// Successful event re-solves (including the startup solve).
    pub resolves: u64,
    /// Requests rejected by the overload shedder (answered `overloaded`).
    pub shed: u64,
    /// True when the loop ended on an explicit `shutdown`, false on EOF.
    pub clean_shutdown: bool,
    /// Read-only commands answered from the published snapshot without
    /// enqueueing (always 0 for the single-stream [`Daemon::run`] loop,
    /// which routes everything through the queue).
    pub reads_lockfree: u64,
    /// Connections accepted over the daemon's lifetime (1 for the
    /// single-stream loop).
    pub connections: u64,
}

/// The long-running control-plane daemon.
#[derive(Debug)]
pub struct Daemon {
    state: ServiceState,
    opts: DaemonOptions,
    metrics: Metrics,
    recorder: Recorder,
    queue_depth: Arc<AtomicU64>,
    /// Requests shed by the reader thread (it cannot touch `metrics`).
    shed_count: Arc<AtomicU64>,
    /// EWMA of per-request handling latency, stored as f64 bits so the
    /// reader thread can read it lock-free for `retry_after_ms` hints.
    ewma_ms_bits: Arc<AtomicU64>,
    events: Vec<EventRecord>,
    seq: u64,
    store: Option<StateStore>,
    recovery: Option<RecoveryReport>,
    /// True once a store I/O failure dropped the daemon to non-durable
    /// serving. Sticky for the daemon's lifetime: once the journal has a
    /// gap, recovered durability cannot be claimed honestly.
    persistence_degraded: bool,
    /// The error that triggered the downgrade, for `health`.
    persistence_error: Option<String>,
    /// Resolved queue capacity (fixed at `run` entry), for `health`.
    capacity: usize,
    /// RFC-0019 rate windows behind `health`'s 1s/10s/60s SLIs; shared
    /// with reader/connection threads.
    sli: Arc<RateWindows>,
    /// The atomically-swapped read snapshot (the lock-free read path).
    cell: Arc<SnapshotCell>,
    /// Reads answered on connection threads without enqueueing.
    reads_lockfree: Arc<AtomicU64>,
    /// Commit epoch: bumped on every committed state mutation (startup
    /// solve / recovery = 1). Tags every published snapshot and every
    /// mutating acknowledgement, so readers can pin a consistent view.
    commit_epoch: u64,
    /// Idempotency-key window: duplicate deliveries of a committed
    /// mutation replay its original ack instead of re-applying.
    dedup: DedupWindow,
}

impl Daemon {
    /// Wraps a state (typically [`ServiceState::from_task`]) for serving.
    ///
    /// The daemon always runs with an enabled [`Recorder`]: the same sink
    /// receives solver phase spans and evaluation counters (via the state's
    /// re-solves), per-command latency histograms, and the queue-depth
    /// gauge. Answering `metrics` or writing `--metrics-out` is then a
    /// snapshot, never a restart.
    pub fn new(mut state: ServiceState, opts: DaemonOptions) -> Self {
        let recorder = Recorder::enabled();
        state.set_recorder(recorder.clone());
        let placeholder = ReadSnapshot {
            epoch: 0,
            theta: state.theta(),
            objective: None,
            monitors: Json::Arr(Vec::new()),
            ods: state.ods().len(),
            persistence: "none",
            persistence_degraded: false,
            persistence_error: None,
            serving_uncertified: false,
            degraded_solves: 0,
            last_good_fallbacks: 0,
            stats: Metrics::default().to_json(),
            wal_stats: Json::Null,
            queue_capacity: 0,
        };
        Daemon {
            state,
            opts,
            metrics: Metrics::default(),
            recorder,
            queue_depth: Arc::new(AtomicU64::new(0)),
            shed_count: Arc::new(AtomicU64::new(0)),
            ewma_ms_bits: Arc::new(AtomicU64::new(0)),
            events: Vec::new(),
            seq: 0,
            store: None,
            recovery: None,
            persistence_degraded: false,
            persistence_error: None,
            capacity: 0,
            sli: Arc::new(RateWindows::new()),
            cell: Arc::new(SnapshotCell::new(placeholder)),
            reads_lockfree: Arc::new(AtomicU64::new(0)),
            commit_epoch: 0,
            dedup: DedupWindow::default(),
        }
    }

    /// A point-in-time copy of the daemon's observability instruments.
    pub fn observability(&self) -> Snapshot {
        self.recorder.snapshot()
    }

    /// Fixes the bounded-queue capacity for this serving session.
    fn resolve_capacity(&mut self) -> usize {
        let capacity = if self.opts.queue_capacity == 0 {
            64
        } else {
            self.opts.queue_capacity
        };
        self.capacity = capacity;
        capacity
    }

    /// Shared boot sequence of both event loops: solve deadline,
    /// instrument pre-registration, durable-store recovery, and the
    /// startup solve. Returns the `hello` line (with resolve/recovery
    /// payloads) and leaves `commit_epoch` at 1.
    ///
    /// # Errors
    /// [`ServiceError`] if the initial solve fails (an unservable
    /// scenario) or the state directory is held by a live lock / contains
    /// an unreplayable journal. Plain store I/O failures degrade instead.
    fn startup(&mut self) -> Result<Json, ServiceError> {
        if let Some(ms) = self.opts.solve_deadline_ms {
            self.state
                .set_solve_deadline(Some(Duration::from_millis(ms)));
        }
        // Pre-register the degraded-serving instruments: a healthy run
        // must expose explicit zeros (absence would be ambiguous in the
        // exposition and break rate() queries on first increment).
        self.recorder.counter_add("degraded_solves", 0);
        self.recorder.counter_add("daemon_overload_shed_total", 0);
        self.recorder.counter_add("daemon_request_panics", 0);
        self.recorder
            .counter_add("daemon_reads_served_lockfree_total", 0);
        self.recorder.counter_add("daemon_jobs_enqueued_total", 0);
        self.recorder
            .counter_add("daemon_coalesce_flushes_total", 0);
        self.recorder
            .counter_add("daemon_coalesced_updates_total", 0);
        self.recorder
            .counter_add("daemon_slow_client_evictions_total", 0);
        self.recorder
            .counter_add("daemon_conn_idle_timeouts_total", 0);
        self.recorder.counter_add("daemon_conn_io_errors_total", 0);
        self.recorder.counter_add("daemon_line_too_long_total", 0);
        self.recorder.counter_add("daemon_dedup_hits_total", 0);
        self.recorder.gauge_set("persistence_degraded", 0.0);

        // Durable store first: recovery may restore an installed
        // configuration (skipping the startup solve) or replay a journal.
        // Lock conflicts and unreplayable journals abort; plain I/O
        // failures downgrade to non-durable serving.
        if self.store.is_none() && !self.persistence_degraded {
            if let Some(cfg) = self.opts.persist.clone() {
                match StateStore::open(&cfg, &mut self.state, &self.recorder) {
                    Ok((store, report)) => {
                        // Seed the dedup window with every request_id the
                        // journal replayed: a client retrying a mutation
                        // whose ack died with the previous process must
                        // get a duplicate ack, not a second application.
                        for id in &report.replayed_request_ids {
                            self.dedup.remember(id, None);
                        }
                        self.store = Some(store);
                        self.recovery = Some(report);
                    }
                    Err(OpenError::Fatal(e)) => return Err(e),
                    Err(OpenError::Degradable(e)) => {
                        self.degrade_persistence(&format!("open: {e}"));
                    }
                }
            }
        }
        // Startup solve: every later event warm-starts from this.
        let hello = if self.state.installed().is_none() {
            let report = self.state.resolve(false)?;
            self.note_resolve("hello", &report);
            Some(report)
        } else {
            None
        };
        self.commit_epoch = 1;
        let mut line = obj(vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::Str("hello".into())),
            ("ods", Json::Num(self.state.ods().len() as f64)),
            ("theta", Json::Num(self.state.theta())),
            ("persistence", Json::Str(self.persistence_mode().into())),
        ]);
        if let (Json::Obj(pairs), Some(report)) = (&mut line, &hello) {
            pairs.push(("resolve".to_string(), resolve_json(report)));
        }
        if let (Json::Obj(pairs), Some(report)) = (&mut line, &self.recovery) {
            pairs.push(("recovered".to_string(), report.to_json()));
        }
        Ok(line)
    }

    /// Shared teardown of both event loops: final snapshot on every clean
    /// exit path, then the bench report and metrics exposition.
    fn finish(&mut self) -> Result<(), ServiceError> {
        self.metrics.shed = self.shed_count.load(Ordering::Relaxed);

        // Final snapshot on *every* clean exit path (explicit `shutdown`
        // and input EOF both land here): a clean-stop recovery then loads
        // one snapshot and replays nothing. A failing final snapshot
        // degrades (the WAL up to the last successful fsync still
        // recovers) instead of turning a served session into an error.
        if let Some(mut store) = self.store.take() {
            match store.write_snapshot(&self.state) {
                Ok(()) => self.store = Some(store),
                Err(e) => self.degrade_persistence(&format!("final snapshot: {e}")),
            }
        }

        if let Some(path) = self.opts.bench_out.clone() {
            std::fs::write(&path, self.bench_report())
                .map_err(|e| ServiceError::State(format!("cannot write '{path}': {e}")))?;
        }
        if let Some(path) = self.opts.metrics_out.clone() {
            let text = self.recorder.snapshot().exposition(self.opts.trace);
            std::fs::write(&path, text)
                .map_err(|e| ServiceError::State(format!("cannot write '{path}': {e}")))?;
        }
        Ok(())
    }

    /// Publishes the current committed state into the snapshot cell, from
    /// which connection threads answer the read-only commands. Called
    /// after every handled request: the epoch only moves on commits, so
    /// republications between commits just refresh the counter payloads.
    fn publish_snapshot(&mut self) {
        self.metrics.shed = self.shed_count.load(Ordering::Relaxed);
        let monitors = match self.state.active_rates() {
            Ok(rates) => Json::Arr(
                rates
                    .iter()
                    .map(|(label, p)| {
                        obj(vec![
                            ("link", Json::Str(label.clone())),
                            ("rate", Json::Num(*p)),
                        ])
                    })
                    .collect(),
            ),
            Err(_) => Json::Arr(Vec::new()),
        };
        let snap = ReadSnapshot {
            epoch: self.commit_epoch,
            theta: self.state.theta(),
            objective: self.state.installed().map(|i| i.objective),
            monitors,
            ods: self.state.ods().len(),
            persistence: self.persistence_mode(),
            persistence_degraded: self.persistence_degraded,
            persistence_error: self.persistence_error.clone(),
            serving_uncertified: self.state.installed().is_some_and(|i| !i.kkt),
            degraded_solves: self.metrics.degraded_solves,
            last_good_fallbacks: self.metrics.last_good_fallbacks,
            stats: self.metrics.to_json(),
            wal_stats: self
                .store
                .as_ref()
                .map_or(Json::Null, StateStore::wal_stats_json),
            queue_capacity: self.capacity as u64,
        };
        self.cell.publish(snap);
        self.recorder
            .counter_add("daemon_snapshot_publications_total", 1);
    }

    /// The shareable read path handed to connection threads.
    fn read_handle(&self) -> ReadHandle {
        ReadHandle {
            cell: Arc::clone(&self.cell),
            queue_depth: Arc::clone(&self.queue_depth),
            shed_count: Arc::clone(&self.shed_count),
            ewma_ms_bits: Arc::clone(&self.ewma_ms_bits),
            reads_lockfree: Arc::clone(&self.reads_lockfree),
            capacity: self.capacity,
            recorder: self.recorder.clone(),
            sli: Arc::clone(&self.sli),
        }
    }

    /// Serves requests from `input` until `shutdown` or EOF, writing one
    /// response line per request (plus a leading `hello` line carrying the
    /// startup solve) to `output`.
    ///
    /// A spawned reader thread feeds a bounded queue; when the queue is
    /// full the reader answers `overloaded` directly (the output is
    /// mutex-shared between the two threads — whole lines only, so the
    /// stream stays valid JSONL). The caller should close `input` after
    /// sending `shutdown` (scripts and sockets do this naturally), since
    /// the reader can only observe the closed queue after its next line.
    ///
    /// # Errors
    /// I/O errors from `output`, and [`ServiceError`] if the *initial*
    /// solve fails (an unservable scenario) or the state directory is held
    /// by a live lock / contains an unreplayable journal. Plain store I/O
    /// failures do *not* abort: the daemon serves on with persistence
    /// degraded (visible in `hello`, `health`, and the metrics
    /// exposition). Per-event solve failures are reported to the peer as
    /// error responses, not returned; a panicking handler is caught, the
    /// state rolled back, and an error response sent.
    pub fn run<R, W>(&mut self, input: R, output: &mut W) -> Result<DaemonSummary, ServiceError>
    where
        R: BufRead + Send,
        W: Write + Send,
    {
        let capacity = self.resolve_capacity();
        let line = self.startup()?;
        self.publish_snapshot();
        let (tx, rx) = mpsc::sync_channel::<Result<Incoming, String>>(capacity);

        // Shared between the consumer (normal responses) and the reader
        // (shed responses). Each holds the lock for exactly one whole
        // line + flush, so the output stays line-atomic JSONL.
        let output = Mutex::new(output);
        {
            let mut out = lock_output(&output);
            writeln!(out, "{}", line.encode()).map_err(ServiceError::io)?;
            out.flush().map_err(ServiceError::io)?;
        }

        let mut clean_shutdown = false;
        let depth = Arc::clone(&self.queue_depth);
        let shed = Arc::clone(&self.shed_count);
        let ewma_bits = Arc::clone(&self.ewma_ms_bits);
        let reader_recorder = self.recorder.clone();
        let reader_sli = Arc::clone(&self.sli);
        let out_ref = &output;
        std::thread::scope(|scope| -> Result<(), ServiceError> {
            scope.spawn(move || {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    // Increment before the send: the consumer decrements
                    // after recv, and recv happens-after send, so the
                    // counter can never underflow.
                    let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
                    reader_recorder.gauge_set("daemon_queue_depth", d as f64);
                    match tx.try_send(parse_incoming(trimmed)) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(_)) => {
                            // Shed: answer immediately so the peer can
                            // retry, instead of blocking it behind a
                            // saturated solver.
                            let d = depth.fetch_sub(1, Ordering::Relaxed) - 1;
                            reader_recorder.gauge_set("daemon_queue_depth", d as f64);
                            shed.fetch_add(1, Ordering::Relaxed);
                            reader_recorder.counter_add("daemon_overload_shed_total", 1);
                            reader_sli.record(Kind::Request);
                            reader_sli.record(Kind::Shed);
                            let hint = retry_after_ms(
                                f64::from_bits(ewma_bits.load(Ordering::Relaxed)),
                                capacity,
                            );
                            let resp = obj(vec![
                                ("ok", Json::Bool(false)),
                                ("error", Json::Str("overloaded".into())),
                                ("retry_after_ms", Json::UInt(hint)),
                            ]);
                            let mut out = lock_output(out_ref);
                            if writeln!(out, "{}", resp.encode())
                                .and_then(|()| out.flush())
                                .is_err()
                            {
                                break; // peer gone: stop reading
                            }
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            break; // queue closed: daemon is shutting down
                        }
                    }
                }
            });
            while let Ok(item) = rx.recv() {
                let d = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                self.recorder.gauge_set("daemon_queue_depth", d as f64);
                self.seq += 1;
                let cmd: &'static str = match &item {
                    Ok(inc) => inc.req.name(),
                    Err(_) => "invalid",
                };
                self.sli.record(Kind::Request);
                match &item {
                    Ok(inc) if inc.req.is_mutating() => self.sli.record(Kind::Mutate),
                    Ok(inc) if inc.req.is_read_only() => self.sli.record(Kind::Read),
                    _ => {}
                }
                let t0 = Instant::now();
                // Panic isolation: clone-before, catch, restore-on-unwind.
                // A handler that panics (solver bug, hostile input past
                // validation) answers an error response and leaves the
                // state exactly as it was; the loop keeps serving.
                let backup = self.state.clone();
                let (response, is_shutdown) =
                    match catch_unwind(AssertUnwindSafe(|| self.handle(item))) {
                        Ok(pair) => pair,
                        Err(payload) => {
                            self.state = backup;
                            self.metrics.record_error();
                            self.recorder.counter_add("daemon_request_panics", 1);
                            let msg = panic_message(payload.as_ref());
                            (
                                self.error_response(
                                    None,
                                    &format!("internal panic (state rolled back): {msg}"),
                                ),
                                false,
                            )
                        }
                    };
                let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
                self.recorder
                    .observe_labeled("daemon_command_latency_ms", "cmd", cmd, elapsed_ms);
                self.update_ewma(elapsed_ms);
                if response.get("ok").and_then(Json::as_bool) == Some(false) {
                    self.sli.record(Kind::Error);
                }
                self.publish_snapshot();
                {
                    let mut out = lock_output(out_ref);
                    writeln!(out, "{}", response.encode()).map_err(ServiceError::io)?;
                    out.flush().map_err(ServiceError::io)?;
                }
                if is_shutdown {
                    clean_shutdown = true;
                    break;
                }
            }
            Ok(())
        })?;
        self.finish()?;
        Ok(DaemonSummary {
            requests: self.metrics.requests,
            resolves: self.metrics.resolves,
            shed: self.metrics.shed,
            clean_shutdown,
            reads_lockfree: 0,
            connections: 1,
        })
    }

    /// Serves the multi-connection transports (`nws serve --tcp/--socket`)
    /// until a `shutdown` request or the last listener dies.
    ///
    /// Per connection, a reader thread answers read-only commands straight
    /// from the published [`ReadSnapshot`] (never enqueueing) and funnels
    /// everything else into the bounded queue this loop drains; a writer
    /// thread preserves per-connection FIFO response order. With a
    /// non-zero `--coalesce-ms`, bursts of `update_demand`/`update_demands`
    /// are merged last-writer-wins per OD into one epoch rebuild + one
    /// warm re-solve; every merged request is still acknowledged
    /// individually (with a `coalesced` batch-size field).
    ///
    /// `shutdown` from any connection drains and closes *all* connections:
    /// the issuer gets its `bye`, accepting stops, every reader is woken,
    /// already-queued requests are still answered, and the final durable
    /// snapshot is written exactly once.
    ///
    /// # Errors
    /// Same startup/teardown contract as [`Daemon::run`]; per-connection
    /// socket errors only ever drop that connection.
    pub fn serve(&mut self, server: Server) -> Result<DaemonSummary, ServiceError> {
        self.resolve_capacity();
        let capacity = self.capacity;
        // The hello line becomes per-connection here (from the read path);
        // the startup solve and recovery still happen exactly once.
        let _ = self.startup()?;
        self.publish_snapshot();
        let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
        let shutting_down = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new());
        let window = Duration::from_millis(self.opts.coalesce_ms);
        let mut clean_shutdown = false;
        let mut depth_max = 0u64;
        std::thread::scope(|scope| {
            crate::net::spawn_acceptors(
                scope,
                server,
                tx,
                self.read_handle(),
                Arc::clone(&registry),
                Arc::clone(&shutting_down),
            );
            let mut buf = CoalesceBuffer::default();
            loop {
                // With a non-empty coalesce buffer, wait only until its
                // deadline; otherwise park until the next job (or until
                // every sender — acceptors and readers — has exited).
                let job = if buf.replies.is_empty() {
                    rx.recv().ok()
                } else {
                    let wait = buf.deadline.map_or(Duration::ZERO, |d| {
                        d.saturating_duration_since(Instant::now())
                    });
                    match rx.recv_timeout(wait) {
                        Ok(job) => Some(job),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            self.flush_coalesced(&mut buf);
                            continue;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => None,
                    }
                };
                let Some(Job { item, reply }) = job else {
                    // Channel closed: every connection is gone. Flush any
                    // buffered updates (they were already accepted).
                    self.flush_coalesced(&mut buf);
                    break;
                };
                let d = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                depth_max = depth_max.max(d + 1);
                self.recorder.gauge_set("daemon_queue_depth", d as f64);
                self.recorder
                    .gauge_set("daemon_queue_depth_max", depth_max as f64);
                self.recorder.counter_add("daemon_jobs_enqueued_total", 1);
                self.sli.record(Kind::Request);
                if let Ok(inc) = &item {
                    if inc.req.is_mutating() {
                        self.sli.record(Kind::Mutate);
                    }
                }
                // Coalescable? Buffer it and keep receiving. (Never during
                // shutdown drain: those must resolve before the loop ends.)
                if !window.is_zero() && !shutting_down.load(Ordering::SeqCst) {
                    if let Ok(inc) = &item {
                        if matches!(
                            inc.req,
                            Request::UpdateDemand { .. } | Request::UpdateDemands { .. }
                        ) {
                            let inc = inc.clone();
                            self.buffer_coalesced(&mut buf, inc, reply, window);
                            continue;
                        }
                    }
                }
                // Ordering barrier: a non-coalescable request observes all
                // buffered updates as committed.
                self.flush_coalesced(&mut buf);
                self.seq += 1;
                let cmd: &'static str = match &item {
                    Ok(inc) => inc.req.name(),
                    Err(_) => "invalid",
                };
                let t0 = Instant::now();
                let backup = self.state.clone();
                let (response, is_shutdown) =
                    match catch_unwind(AssertUnwindSafe(|| self.handle(item))) {
                        Ok(pair) => pair,
                        Err(payload) => {
                            self.state = backup;
                            self.metrics.record_error();
                            self.recorder.counter_add("daemon_request_panics", 1);
                            let msg = panic_message(payload.as_ref());
                            (
                                self.error_response(
                                    None,
                                    &format!("internal panic (state rolled back): {msg}"),
                                ),
                                false,
                            )
                        }
                    };
                let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
                self.recorder
                    .observe_labeled("daemon_command_latency_ms", "cmd", cmd, elapsed_ms);
                self.update_ewma(elapsed_ms);
                if response.get("ok").and_then(Json::as_bool) == Some(false) {
                    self.sli.record(Kind::Error);
                }
                self.publish_snapshot();
                let _ = reply.send(response);
                if is_shutdown && !clean_shutdown {
                    clean_shutdown = true;
                    // Drain-and-close: stop accepting, wake every blocked
                    // reader (EOF on their read side), keep answering what
                    // was already queued until the last sender drops.
                    shutting_down.store(true, Ordering::SeqCst);
                    registry.close_read_sides();
                }
            }
        });
        self.finish()?;
        Ok(DaemonSummary {
            requests: self.metrics.requests,
            resolves: self.metrics.resolves,
            shed: self.metrics.shed,
            clean_shutdown,
            reads_lockfree: self.reads_lockfree.load(Ordering::Relaxed),
            connections: registry.opened(),
        })
    }

    /// Buffers one coalescable demand update. OD names are validated *now*
    /// (unknown ODs answer an immediate error instead of poisoning the
    /// batch) — sound because the OD set cannot change under the buffer:
    /// any `add_od`/`remove_od` flushes it first.
    fn buffer_coalesced(
        &mut self,
        buf: &mut CoalesceBuffer,
        inc: Incoming,
        reply: mpsc::Sender<Json>,
        window: Duration,
    ) {
        // Counted on entry, like every other accepted request.
        self.metrics.record_request(inc.req.name());
        // Exactly-once: a duplicate of an already-committed mutation
        // replays its remembered ack instead of re-entering the batch.
        if let Some(ack) = self.replay_duplicate(&inc) {
            let _ = reply.send(ack);
            return;
        }
        let updates: Vec<(String, f64)> = match &inc.req {
            Request::UpdateDemand { od, size } => vec![(od.clone(), *size)],
            Request::UpdateDemands { updates } => updates.clone(),
            _ => unreachable!("only demand updates are coalescable"),
        };
        let unknown = updates
            .iter()
            .find(|(od, _)| !self.state.ods().iter().any(|o| o.name == *od));
        if let Some((od, _)) = unknown {
            self.seq += 1;
            self.metrics.record_error();
            self.sli.record(Kind::Error);
            let msg = format!("unknown OD '{od}'");
            let response = with_request_id(
                self.error_response(Some(&inc.req), &msg),
                inc.request_id.as_deref(),
            );
            let _ = reply.send(response);
            return;
        }
        for (od, size) in updates {
            match buf.merged.iter_mut().find(|(o, _)| *o == od) {
                Some((_, s)) => *s = size, // last writer wins
                None => buf.merged.push((od, size)),
            }
        }
        buf.replies.push((inc, reply));
        if buf.deadline.is_none() {
            buf.deadline = Some(Instant::now() + window);
        }
    }

    /// Applies the coalesce buffer as *one* `update_demands` batch — one
    /// epoch rebuild, one warm re-solve, one journal record — and
    /// acknowledges every merged request individually.
    fn flush_coalesced(&mut self, buf: &mut CoalesceBuffer) {
        if buf.replies.is_empty() {
            return;
        }
        let merged = std::mem::take(&mut buf.merged);
        let replies = std::mem::take(&mut buf.replies);
        buf.deadline = None;
        let batch_size = replies.len() as u64;
        let batch = Request::UpdateDemands { updates: merged };
        self.seq += 1;
        self.recorder
            .counter_add("daemon_coalesce_flushes_total", 1);
        self.recorder
            .counter_add("daemon_coalesced_updates_total", batch_size);
        let t0 = Instant::now();
        let backup = self.state.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.state.apply_event(&batch, self.opts.shadow_cold)
        }));
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.recorder.observe_labeled(
            "daemon_command_latency_ms",
            "cmd",
            "coalesced_flush",
            elapsed_ms,
        );
        self.update_ewma(elapsed_ms);
        let mut acks: Vec<(mpsc::Sender<Json>, Json)> = Vec::with_capacity(replies.len());
        match outcome {
            Ok(Ok(report)) => {
                // The batch's journal record carries every merged
                // request_id, so a crash between journal and ack still
                // recovers the ids into the dedup window.
                let ids: Vec<&str> = replies
                    .iter()
                    .filter_map(|(inc, _)| inc.dedup_key())
                    .collect();
                self.journal(&batch, &ids);
                self.note_resolve("update_demands", &report);
                self.commit_epoch += 1;
                let resolve = resolve_json(&report);
                for (inc, reply) in replies {
                    let response = with_request_id(
                        self.ok_response(
                            &inc.req,
                            vec![
                                ("epoch", Json::UInt(self.commit_epoch)),
                                ("coalesced", Json::UInt(batch_size)),
                                ("resolve", resolve.clone()),
                            ],
                        ),
                        inc.request_id.as_deref(),
                    );
                    if let Some(key) = inc.dedup_key() {
                        self.dedup.remember(key, Some(response.clone()));
                    }
                    acks.push((reply, response));
                }
            }
            Ok(Err(e)) => {
                // Validated sizes can still fail the solve (e.g. an
                // infeasible θ after the merge); the whole batch reports
                // the same error and the state stays untouched (apply_event
                // is transactional). Errors never enter the dedup window —
                // the client may retry them for real.
                let msg = e.to_string();
                for (inc, reply) in replies {
                    self.metrics.record_error();
                    self.sli.record(Kind::Error);
                    let response = with_request_id(
                        self.error_response(Some(&inc.req), &msg),
                        inc.request_id.as_deref(),
                    );
                    acks.push((reply, response));
                }
            }
            Err(payload) => {
                self.state = backup;
                self.recorder.counter_add("daemon_request_panics", 1);
                let msg = format!(
                    "internal panic (state rolled back): {}",
                    panic_message(payload.as_ref())
                );
                for (inc, reply) in replies {
                    self.metrics.record_error();
                    self.sli.record(Kind::Error);
                    let response = with_request_id(
                        self.error_response(Some(&inc.req), &msg),
                        inc.request_id.as_deref(),
                    );
                    acks.push((reply, response));
                }
            }
        }
        // Publish BEFORE acking, matching the publish-then-reply order of
        // the non-coalesced path: a client that receives its ack (carrying
        // commit epoch K) and immediately issues a lock-free read must
        // observe epoch >= K, never K-1.
        self.publish_snapshot();
        for (reply, response) in acks {
            let _ = reply.send(response);
        }
    }

    /// Folds one handling latency into the EWMA (α = 0.2) behind the
    /// shedder's `retry_after_ms` hint. Single writer (the event loop), so
    /// load/store need no compare-exchange loop.
    fn update_ewma(&self, elapsed_ms: f64) {
        let prev = f64::from_bits(self.ewma_ms_bits.load(Ordering::Relaxed));
        let next = if prev == 0.0 {
            elapsed_ms
        } else {
            0.8 * prev + 0.2 * elapsed_ms
        };
        self.ewma_ms_bits.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Current persistence mode, as reported by `hello` and `health`.
    fn persistence_mode(&self) -> &'static str {
        if self.store.is_some() {
            "durable"
        } else if self.persistence_degraded {
            "degraded"
        } else {
            "none"
        }
    }

    /// Drops to non-durable serving after a store I/O failure: the store
    /// is closed (releasing its lock), the downgrade is visible in
    /// `health`/`hello`/metrics, and requests keep being served and
    /// acknowledged — just not journaled.
    fn degrade_persistence(&mut self, why: &str) {
        self.store = None;
        self.persistence_degraded = true;
        self.persistence_error = Some(why.to_string());
        self.recorder.gauge_set("persistence_degraded", 1.0);
        self.recorder
            .counter_add("daemon_persistence_degraded_total", 1);
    }

    /// Journals a successfully applied state-changing request into the
    /// durable store, when one is configured. A journal failure degrades
    /// persistence (non-durable serving) rather than failing the request:
    /// the state change *has already been applied and will be served*, so
    /// answering an error would be a lie in the other direction.
    ///
    /// `request_ids` (the idempotency keys of the client requests this
    /// record commits) ride along in the WAL record so crash recovery can
    /// re-seed the dedup window — exactly-once survives a daemon restart.
    fn journal(&mut self, req: &Request, request_ids: &[&str]) {
        if let Some(store) = &mut self.store {
            if let Err(e) = store.record_applied(req, &self.state, request_ids) {
                self.degrade_persistence(&format!("journal '{}': {e}", req.name()));
            }
        }
    }

    /// Folds one re-solve into metrics, the event log, and the
    /// degraded-serving counters.
    fn note_resolve(&mut self, cmd: &'static str, report: &SolveReport) {
        if report.degraded {
            self.recorder.counter_add("degraded_solves", 1);
            self.sli.record(Kind::DegradedSolve);
        }
        if report.fallback == Some("last_good") {
            self.recorder.counter_add("daemon_last_good_fallbacks", 1);
        }
        self.metrics.record_resolve(report);
        self.events.push(EventRecord {
            seq: self.seq,
            cmd,
            warm: report.warm_started,
            iterations: report.iterations,
            wall_ms: report.wall_ms,
            cold_iterations: report.cold.as_ref().map(|c| c.iterations),
            cold_ms: report.cold.as_ref().map(|c| c.wall_ms),
            objective: report.objective,
            degraded: report.degraded,
        });
    }

    /// Processes one queue item; returns the response and whether to stop.
    ///
    /// Exactly-once envelope handling happens here: a duplicate
    /// `request_id` short-circuits to its remembered ack (the state
    /// machine is not touched again), every response to an id-carrying
    /// request echoes the id back, and committed state-changing acks are
    /// remembered for future replays.
    fn handle(&mut self, item: Result<Incoming, String>) -> (Json, bool) {
        // Fold reader-side sheds in so `stats`/`health` are current.
        self.metrics.shed = self.shed_count.load(Ordering::Relaxed);
        let inc = match item {
            Ok(inc) => inc,
            Err(msg) => {
                self.metrics.record_request("invalid");
                self.metrics.record_error();
                return (self.error_response(None, &msg), false);
            }
        };
        self.metrics.record_request(inc.req.name());
        if let Some(ack) = self.replay_duplicate(&inc) {
            return (ack, false);
        }
        let key = inc.dedup_key().map(str::to_string);
        let Incoming { req, request_id } = inc;
        let ids: Vec<&str> = key.as_deref().into_iter().collect();
        let (response, stop) = self.dispatch(req, &ids);
        let response = with_request_id(response, request_id.as_deref());
        // Only *successful, state-changing* acks enter the window: an
        // error leaves no state behind, so the client may retry it for
        // real and must not get a stale failure replayed.
        if let Some(key) = key {
            if response_ok(&response) {
                self.dedup.remember(&key, Some(response.clone()));
            }
        }
        (response, stop)
    }

    /// Exactly-once replay: a `request_id` the dedup window already holds
    /// is answered with its original ack byte-for-byte. When the id was
    /// recovered from the WAL (the original ack died with the previous
    /// process), a synthesized ack marked `"duplicate": true` stands in —
    /// either way the mutation is applied exactly once.
    fn replay_duplicate(&mut self, inc: &Incoming) -> Option<Json> {
        let id = inc.dedup_key()?;
        let cached = self.dedup.lookup(id)?.clone();
        self.recorder.counter_add("daemon_dedup_hits_total", 1);
        Some(match cached {
            Some(ack) => ack,
            None => obj(vec![
                ("ok", Json::Bool(true)),
                ("seq", Json::Num(self.seq as f64)),
                ("cmd", Json::Str(inc.req.name().into())),
                ("duplicate", Json::Bool(true)),
                ("epoch", Json::UInt(self.commit_epoch)),
                ("request_id", Json::Str(id.into())),
            ]),
        })
    }

    /// Dispatches one parsed request to the state machine; `ids` are the
    /// idempotency keys to journal alongside a committed state change.
    fn dispatch(&mut self, req: Request, ids: &[&str]) -> (Json, bool) {
        if req.is_mutating() {
            let outcome = self.state.apply_event(&req, self.opts.shadow_cold);
            return match outcome {
                Ok(report) => {
                    // Journal before acknowledging. `ok` means the event
                    // is *applied and being served*; it is durable only
                    // while `health` reports persistence "durable" — a
                    // journal failure flips that to "degraded" instead of
                    // un-applying the event.
                    self.journal(&req, ids);
                    self.note_resolve(req.name(), &report);
                    self.commit_epoch += 1;
                    (
                        self.ok_response(
                            &req,
                            vec![
                                ("epoch", Json::UInt(self.commit_epoch)),
                                ("resolve", resolve_json(&report)),
                            ],
                        ),
                        false,
                    )
                }
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            };
        }
        match &req {
            Request::Ping => (
                self.ok_response(&req, vec![("pong", Json::Bool(true))]),
                false,
            ),
            Request::Health => {
                let serving_uncertified = self.state.installed().is_some_and(|i| !i.kkt);
                let status = if self.persistence_degraded || serving_uncertified {
                    "degraded"
                } else {
                    "ok"
                };
                let now_s = self.sli.now_s();
                let (level, reasons) = self.sli.classify_at(now_s);
                self.sli.export_gauges(&self.recorder);
                let mut payload = vec![
                    ("status", Json::Str(status.into())),
                    ("sli", Json::Str(level.as_str().into())),
                    (
                        "sli_reasons",
                        Json::Arr(reasons.iter().map(|r| Json::Str((*r).into())).collect()),
                    ),
                    ("persistence", Json::Str(self.persistence_mode().into())),
                    ("serving_uncertified", Json::Bool(serving_uncertified)),
                    ("degraded_solves", Json::UInt(self.metrics.degraded_solves)),
                    (
                        "last_good_fallbacks",
                        Json::UInt(self.metrics.last_good_fallbacks),
                    ),
                    ("shed", Json::UInt(self.metrics.shed)),
                    (
                        "queue_depth",
                        Json::UInt(self.queue_depth.load(Ordering::Relaxed)),
                    ),
                    ("queue_capacity", Json::UInt(self.capacity as u64)),
                    ("rates", self.sli.rates_json_at(now_s)),
                ];
                if let Some(why) = &self.persistence_error {
                    payload.push(("persistence_error", Json::Str(why.clone())));
                }
                (self.ok_response(&req, payload), false)
            }
            Request::QueryRates => match self.state.active_rates() {
                Ok(rates) => {
                    let monitors = Json::Arr(
                        rates
                            .iter()
                            .map(|(label, p)| {
                                obj(vec![
                                    ("link", Json::Str(label.clone())),
                                    ("rate", Json::Num(*p)),
                                ])
                            })
                            .collect(),
                    );
                    let objective = self
                        .state
                        .installed()
                        .map_or(Json::Null, |i| Json::Num(i.objective));
                    (
                        self.ok_response(
                            &req,
                            vec![
                                ("theta", Json::Num(self.state.theta())),
                                ("objective", objective),
                                ("monitors", monitors),
                            ],
                        ),
                        false,
                    )
                }
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            },
            Request::QueryAccuracy { runs, seed } => match self.state.accuracy(*runs, *seed) {
                Ok((mean, worst, best)) => (
                    self.ok_response(
                        &req,
                        vec![
                            ("mean", Json::Num(mean)),
                            ("worst", Json::Num(worst)),
                            ("best", Json::Num(best)),
                        ],
                    ),
                    false,
                ),
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            },
            Request::Snapshot => {
                let depth = self.state.snapshot();
                self.journal(&req, ids);
                (
                    self.ok_response(&req, vec![("depth", Json::Num(depth as f64))]),
                    false,
                )
            }
            Request::Rollback => match self.state.rollback() {
                Ok((depth, objective)) => {
                    self.journal(&req, ids);
                    // A rollback swaps the installed rates: a committed
                    // state change, so readers get a new epoch.
                    self.commit_epoch += 1;
                    (
                        self.ok_response(
                            &req,
                            vec![
                                ("epoch", Json::UInt(self.commit_epoch)),
                                ("depth", Json::Num(depth as f64)),
                                ("objective", objective.map_or(Json::Null, Json::Num)),
                            ],
                        ),
                        false,
                    )
                }
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            },
            Request::Stats => (
                self.ok_response(&req, vec![("stats", self.metrics.to_json())]),
                false,
            ),
            Request::Metrics => {
                let mut metrics = metrics_json(&self.recorder.snapshot());
                if let Json::Obj(pairs) = &mut metrics {
                    let wal = self
                        .store
                        .as_ref()
                        .map_or(Json::Null, StateStore::wal_stats_json);
                    pairs.push(("wal_stats".to_string(), wal));
                }
                (self.ok_response(&req, vec![("metrics", metrics)]), false)
            }
            Request::Shutdown => (
                self.ok_response(
                    &req,
                    vec![
                        ("bye", Json::Bool(true)),
                        ("resolves", Json::Num(self.metrics.resolves as f64)),
                    ],
                ),
                true,
            ),
            // Mutating variants were dispatched above.
            _ => unreachable!("mutating request in query path"),
        }
    }

    fn ok_response(&self, req: &Request, payload: Vec<(&str, Json)>) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("seq", Json::Num(self.seq as f64)),
            ("cmd", Json::Str(req.name().into())),
        ];
        pairs.extend(payload);
        obj(pairs)
    }

    fn error_response(&self, req: Option<&Request>, msg: &str) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(false)),
            ("seq", Json::Num(self.seq as f64)),
        ];
        if let Some(req) = req {
            pairs.push(("cmd", Json::Str(req.name().into())));
        }
        pairs.push(("error", Json::Str(msg.into())));
        obj(pairs)
    }

    /// The `BENCH_recover.json` document: per-event latency plus warm/cold
    /// totals and the solve-deadline tail.
    fn bench_report(&self) -> String {
        let events = Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    obj(vec![
                        ("seq", Json::Num(e.seq as f64)),
                        ("cmd", Json::Str(e.cmd.into())),
                        ("warm", Json::Bool(e.warm)),
                        ("iterations", Json::Num(e.iterations as f64)),
                        ("wall_ms", Json::Num(e.wall_ms)),
                        (
                            "cold_iterations",
                            e.cold_iterations
                                .map_or(Json::Null, |n| Json::Num(n as f64)),
                        ),
                        ("cold_ms", e.cold_ms.map_or(Json::Null, Json::Num)),
                        ("objective", Json::Num(e.objective)),
                        ("degraded", Json::Bool(e.degraded)),
                    ])
                })
                .collect(),
        );
        let warm_events: Vec<&EventRecord> = self.events.iter().filter(|e| e.warm).collect();
        let warm_ms: f64 = warm_events.iter().map(|e| e.wall_ms).sum();
        let warm_iters: usize = warm_events.iter().map(|e| e.iterations).sum();
        let cold_ms: f64 = warm_events.iter().filter_map(|e| e.cold_ms).sum();
        let cold_iters: usize = warm_events.iter().filter_map(|e| e.cold_iterations).sum();
        let solve_ms: Vec<f64> = self.events.iter().map(|e| e.wall_ms).collect();
        let report = obj(vec![
            ("bench", Json::Str("serve".into())),
            (
                "recovery",
                self.recovery
                    .as_ref()
                    .map_or(Json::Null, RecoveryReport::to_json),
            ),
            ("events", events),
            (
                "totals",
                obj(vec![
                    ("warm_resolves", Json::Num(warm_events.len() as f64)),
                    ("warm_iterations", Json::Num(warm_iters as f64)),
                    ("warm_ms", Json::Num(warm_ms)),
                    ("cold_iterations", Json::Num(cold_iters as f64)),
                    ("cold_ms", Json::Num(cold_ms)),
                ]),
            ),
            (
                "solve_deadline",
                obj(vec![
                    (
                        "configured_ms",
                        self.opts.solve_deadline_ms.map_or(Json::Null, Json::UInt),
                    ),
                    (
                        "solve_ms_p99",
                        percentile(&solve_ms, 0.99).map_or(Json::Null, Json::Num),
                    ),
                    ("degraded_solves", Json::UInt(self.metrics.degraded_solves)),
                ]),
            ),
        ]);
        let mut text = report.encode();
        text.push('\n');
        text
    }
}

/// Locks the shared output; a poisoned mutex is fine to reuse, because
/// holders only ever write whole lines (a panic mid-`writeln` can at
/// worst truncate the final line, which readers already tolerate).
fn lock_output<'m, 'w, W>(output: &'m Mutex<&'w mut W>) -> std::sync::MutexGuard<'m, &'w mut W>
where
    W: Write + ?Sized,
{
    match output.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The shedder's backoff hint: roughly one queue-drain at the observed
/// per-request latency, clamped to [10 ms, 30 s].
pub(crate) fn retry_after_ms(ewma_ms: f64, capacity: usize) -> u64 {
    (ewma_ms * capacity as f64).clamp(10.0, 30_000.0).round() as u64
}

/// The q-quantile (nearest-rank) of `values`; `None` when empty.
fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Echoes the client's `request_id` back on a response object (no-op when
/// the request carried none). The id is appended *before* the ack enters
/// the dedup window, so a replayed ack is byte-identical to the original.
fn with_request_id(mut response: Json, request_id: Option<&str>) -> Json {
    if let (Json::Obj(pairs), Some(id)) = (&mut response, request_id) {
        pairs.push(("request_id".to_string(), Json::Str(id.to_string())));
    }
    response
}

/// Whether a response object acknowledges success (`"ok": true`).
fn response_ok(response: &Json) -> bool {
    matches!(response, Json::Obj(pairs)
        if pairs.iter().any(|(k, v)| k == "ok" && matches!(v, Json::Bool(true))))
}

/// Best-effort text of a caught panic payload (`&str` / `String` cover
/// `panic!` and `assert!`; anything else is opaque by design).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// The `metrics` response payload: the observability snapshot as
/// structured JSON. Counters and bucket counts are exact integers
/// ([`Json::UInt`]); histograms keep per-bucket (non-cumulative) counts in
/// [`nws_obs::LATENCY_BUCKETS_MS`] order plus the `+Inf` slot; spans come
/// preorder over the phase tree with their nesting depth.
pub(crate) fn metrics_json(snap: &Snapshot) -> Json {
    fn key(name: &str, label: Option<(&str, &str)>) -> String {
        match label {
            Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
            None => name.to_string(),
        }
    }
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|c| (key(c.name, c.label), Json::UInt(c.value)))
            .collect(),
    );
    let gauges = Json::Obj(
        snap.gauges
            .iter()
            .map(|g| (key(g.name, g.label), Json::Num(g.value)))
            .collect(),
    );
    let histograms = Json::Arr(
        snap.histograms
            .iter()
            .map(|h| {
                obj(vec![
                    ("name", Json::Str(key(h.name, h.label))),
                    ("count", Json::UInt(h.count)),
                    ("sum", Json::Num(h.sum)),
                    (
                        "buckets",
                        Json::Arr(h.bucket_counts.iter().map(|&c| Json::UInt(c)).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let spans = Json::Arr(
        snap.spans
            .iter()
            .map(|s| {
                obj(vec![
                    ("name", Json::Str(s.name.into())),
                    ("depth", Json::UInt(s.depth as u64)),
                    ("count", Json::UInt(s.count)),
                    ("total_ms", Json::Num(s.total_ms)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("spans", spans),
    ])
}

/// The `"resolve"` payload of a mutating command's response.
fn resolve_json(report: &SolveReport) -> Json {
    let mut pairs = vec![
        ("warm", Json::Bool(report.warm_started)),
        ("iterations", Json::Num(report.iterations as f64)),
        (
            "constraint_releases",
            Json::Num(report.constraint_releases as f64),
        ),
        ("kkt", Json::Bool(report.kkt)),
        ("objective", Json::Num(report.objective)),
        (
            "objective_delta",
            report.objective_delta.map_or(Json::Null, Json::Num),
        ),
        ("lambda", Json::Num(report.lambda)),
        ("wall_ms", Json::Num(report.wall_ms)),
        ("active_monitors", Json::Num(report.active_monitors as f64)),
        ("degraded", Json::Bool(report.degraded)),
    ];
    if let Some(step) = report.fallback {
        pairs.push(("fallback", Json::Str(step.into())));
    }
    if let Some(cold) = &report.cold {
        pairs.push((
            "cold",
            obj(vec![
                ("iterations", Json::Num(cold.iterations as f64)),
                ("wall_ms", Json::Num(cold.wall_ms)),
                ("objective", Json::Num(cold.objective)),
            ]),
        ));
    }
    obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::state::SolverChaos;
    use nws_core::scenarios::janet_task;
    use nws_core::PlacementConfig;
    use nws_store::FaultPlan;
    use std::io::Cursor;

    fn run_state_script(
        state: ServiceState,
        script: &str,
        opts: DaemonOptions,
    ) -> (Vec<Json>, DaemonSummary) {
        let mut daemon = Daemon::new(state, opts);
        let mut out = Vec::new();
        let summary = daemon
            .run(Cursor::new(script.to_string()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines = text
            .lines()
            .map(|l| parse(l).expect("daemon emits valid JSON"))
            .collect();
        (lines, summary)
    }

    fn run_script(script: &str, opts: DaemonOptions) -> (Vec<Json>, DaemonSummary) {
        let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        run_state_script(state, script, opts)
    }

    #[test]
    fn hello_then_ping_then_shutdown() {
        let script = "{\"cmd\":\"ping\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(script, DaemonOptions::default());
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("cmd").unwrap().as_str(), Some("hello"));
        assert_eq!(lines[0].get("persistence").unwrap().as_str(), Some("none"));
        assert_eq!(
            lines[0]
                .get("resolve")
                .unwrap()
                .get("kkt")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(
            lines[0]
                .get("resolve")
                .unwrap()
                .get("degraded")
                .unwrap()
                .as_bool(),
            Some(false)
        );
        assert_eq!(lines[1].get("pong").unwrap().as_bool(), Some(true));
        assert_eq!(lines[2].get("bye").unwrap().as_bool(), Some(true));
        assert!(summary.clean_shutdown);
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.shed, 0);
    }

    #[test]
    fn eof_without_shutdown_is_unclean_but_graceful() {
        let (lines, summary) = run_script("{\"cmd\":\"ping\"}\n", DaemonOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(!summary.clean_shutdown);
    }

    #[test]
    fn malformed_lines_get_error_responses() {
        let script = "this is not json\n{\"cmd\":\"warp\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(script, DaemonOptions::default());
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(lines[2].get("ok").unwrap().as_bool(), Some(false));
        assert!(lines[2]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown command"));
        assert!(summary.clean_shutdown);
    }

    #[test]
    fn mutating_event_reports_resolve_payload() {
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(
            script,
            DaemonOptions {
                shadow_cold: true,
                ..DaemonOptions::default()
            },
        );
        let resolve = lines[1].get("resolve").unwrap();
        assert_eq!(resolve.get("warm").unwrap().as_bool(), Some(true));
        assert_eq!(resolve.get("kkt").unwrap().as_bool(), Some(true));
        assert_eq!(resolve.get("degraded").unwrap().as_bool(), Some(false));
        assert!(resolve.get("fallback").is_none());
        assert!(resolve.get("cold").unwrap().get("iterations").is_some());
        assert!(resolve.get("objective_delta").unwrap().as_f64().is_some());
    }

    #[test]
    fn bench_report_written() {
        let dir = std::env::temp_dir().join("nws_service_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_serve.json");
        let script = "{\"cmd\":\"set_theta\",\"theta\":90000}\n\
                      {\"cmd\":\"fail_link\",\"a\":\"FR\",\"b\":\"LU\"}\n\
                      {\"cmd\":\"shutdown\"}\n";
        let (_, summary) = run_script(
            script,
            DaemonOptions {
                shadow_cold: true,
                bench_out: Some(path.to_string_lossy().into_owned()),
                solve_deadline_ms: Some(5_000),
                ..DaemonOptions::default()
            },
        );
        assert_eq!(summary.resolves, 3); // hello + 2 events
        let report = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.get("bench").unwrap().as_str(), Some("serve"));
        let events = report.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("degraded").unwrap().as_bool(), Some(false));
        let totals = report.get("totals").unwrap();
        assert_eq!(totals.get("warm_resolves").unwrap().as_f64(), Some(2.0));
        // Shadow cold data present for warm events.
        assert!(totals.get("cold_iterations").unwrap().as_f64().unwrap() > 0.0);
        // Solve-deadline tail section: configured budget, latency p99,
        // degraded count (zero here — a generous budget).
        let deadline = report.get("solve_deadline").unwrap();
        assert_eq!(deadline.get("configured_ms").unwrap().as_u64(), Some(5_000));
        assert!(deadline.get("solve_ms_p99").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(deadline.get("degraded_solves").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn hostile_add_od_answers_error_and_loop_survives() {
        // Regression: a size ≤ 1 used to sail through the protocol layer
        // and panic the event loop inside `SreUtility::new`. It must now
        // come back as an error response, with the daemon still serving.
        let script =
            "{\"cmd\":\"add_od\",\"name\":\"EVIL\",\"src\":\"UK\",\"dst\":\"DE\",\"size\":0.5}\n\
                      {\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":1}\n\
                      {\"cmd\":\"set_theta\",\"theta\":-5}\n\
                      {\"cmd\":\"ping\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(script, DaemonOptions::default());
        assert_eq!(lines.len(), 6);
        for hostile in &lines[1..4] {
            assert_eq!(hostile.get("ok").unwrap().as_bool(), Some(false));
            assert!(hostile
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("must be a finite"));
        }
        assert_eq!(lines[4].get("pong").unwrap().as_bool(), Some(true));
        assert!(summary.clean_shutdown);
        assert_eq!(summary.resolves, 1); // only the startup solve ran
    }

    #[test]
    fn panicking_handler_is_isolated_and_state_rolled_back() {
        // Chaos schedules a panic on resolve #1 (the #0 slot is the
        // startup solve). The poisoned set_theta must come back as an
        // error response with θ unchanged, and the daemon keeps serving:
        // the next mutation certifies normally.
        let mut state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        state.set_chaos(SolverChaos::new().with_panic_on_resolve(1));
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n\
                      {\"cmd\":\"query_rates\"}\n\
                      {\"cmd\":\"set_theta\",\"theta\":70000}\n\
                      {\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_state_script(state, script, DaemonOptions::default());
        assert_eq!(lines.len(), 5);
        let hello_theta = lines[0].get("theta").unwrap().as_f64().unwrap();
        let poisoned = &lines[1];
        assert_eq!(poisoned.get("ok").unwrap().as_bool(), Some(false));
        let msg = poisoned.get("error").unwrap().as_str().unwrap();
        assert!(msg.contains("internal panic"), "{msg}");
        assert!(msg.contains("injected chaos panic"), "{msg}");
        // θ rolled back to the pre-request value.
        assert_eq!(
            lines[2].get("theta").unwrap().as_f64(),
            Some(hello_theta),
            "state must roll back to the pre-panic value"
        );
        // The loop survived and the next solve certifies.
        let resolve = lines[3].get("resolve").unwrap();
        assert_eq!(resolve.get("kkt").unwrap().as_bool(), Some(true));
        assert!(summary.clean_shutdown);
        assert_eq!(summary.requests, 4);
    }

    #[test]
    fn health_reports_ok_on_a_clean_daemon() {
        let script = "{\"cmd\":\"health\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(script, DaemonOptions::default());
        let health = &lines[1];
        assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.get("persistence").unwrap().as_str(), Some("none"));
        assert_eq!(health.get("degraded_solves").unwrap().as_u64(), Some(0));
        assert_eq!(health.get("shed").unwrap().as_u64(), Some(0));
        assert_eq!(health.get("queue_capacity").unwrap().as_u64(), Some(64));
        assert_eq!(
            health.get("serving_uncertified").unwrap().as_bool(),
            Some(false)
        );
        assert!(health.get("persistence_error").is_none());
    }

    #[test]
    fn exhausted_budget_degrades_but_keeps_serving() {
        // A zero-iteration cap makes every solve (warm, cold retry, and
        // startup) return uncertified: the daemon serves best-effort
        // rates, marks the resolve degraded, and `health` flips to
        // "degraded" — it never errors out or stops answering.
        let mut state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        state.set_chaos(SolverChaos::new().with_max_iters(0));
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n\
                      {\"cmd\":\"query_rates\"}\n\
                      {\"cmd\":\"health\"}\n\
                      {\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_state_script(state, script, DaemonOptions::default());
        let hello_resolve = lines[0].get("resolve").unwrap();
        assert_eq!(hello_resolve.get("degraded").unwrap().as_bool(), Some(true));
        let resolve = lines[1].get("resolve").unwrap();
        assert_eq!(resolve.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(resolve.get("fallback").unwrap().as_str(), Some("last_good"));
        // Rates still answer (the last-good startup vector).
        assert_eq!(lines[2].get("ok").unwrap().as_bool(), Some(true));
        assert!(!lines[2]
            .get("monitors")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        let health = &lines[3];
        assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(
            health.get("serving_uncertified").unwrap().as_bool(),
            Some(true)
        );
        assert!(health.get("degraded_solves").unwrap().as_u64().unwrap() >= 2);
        assert!(health.get("last_good_fallbacks").unwrap().as_u64().unwrap() >= 1);
        assert!(summary.clean_shutdown);
    }

    #[test]
    fn store_io_failure_degrades_persistence_not_the_daemon() {
        // A saturating fault schedule (every mutating filesystem op
        // fails) makes the store unopenable. That is an I/O problem, not
        // a corruption problem: the daemon must come up, say so in
        // `hello`/`health`, and keep acknowledging mutations.
        let dir = std::env::temp_dir().join(format!("nws_degrade_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = PersistConfig::new(&dir);
        cfg.fault = Some(FaultPlan {
            seed: 7,
            rate: 255,
            max_faults: u64::MAX,
        });
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n\
                      {\"cmd\":\"health\"}\n\
                      {\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(
            script,
            DaemonOptions {
                persist: Some(cfg),
                ..DaemonOptions::default()
            },
        );
        assert_eq!(
            lines[0].get("persistence").unwrap().as_str(),
            Some("degraded")
        );
        // The mutation is applied and acknowledged despite no journal.
        assert_eq!(lines[1].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            lines[1]
                .get("resolve")
                .unwrap()
                .get("kkt")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let health = &lines[2];
        assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(
            health.get("persistence").unwrap().as_str(),
            Some("degraded")
        );
        assert!(health
            .get("persistence_error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("open"));
        assert!(summary.clean_shutdown);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flood_answers_every_request_ok_or_overloaded() {
        // 300 pings into a 2-slot queue: some are shed, but every single
        // line gets exactly one response, and shed responses carry a
        // clamped retry hint. (How many shed is timing-dependent; the
        // answered-count invariant is not.)
        let mut script = String::new();
        for _ in 0..300 {
            script.push_str("{\"cmd\":\"ping\"}\n");
        }
        script.push_str("{\"cmd\":\"shutdown\"}\n");
        let (lines, summary) = run_script(
            &script,
            DaemonOptions {
                queue_capacity: 2,
                ..DaemonOptions::default()
            },
        );
        assert_eq!(summary.requests + summary.shed, 301);
        assert_eq!(lines.len() as u64, 1 + summary.requests + summary.shed);
        for line in &lines {
            let shed = line
                .get("error")
                .is_some_and(|e| e.as_str() == Some("overloaded"));
            if shed {
                let hint = line.get("retry_after_ms").unwrap().as_u64().unwrap();
                assert!((10..=30_000).contains(&hint), "hint {hint}");
                assert!(line.get("seq").is_none(), "shed responses carry no seq");
            }
        }
    }

    #[test]
    fn retry_hint_is_clamped_to_sane_bounds() {
        assert_eq!(retry_after_ms(0.0, 64), 10); // no latency sample yet
        assert_eq!(retry_after_ms(2.0, 64), 128);
        assert_eq!(retry_after_ms(10_000.0, 64), 30_000);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), None);
        assert_eq!(percentile(&[5.0], 0.99), Some(5.0));
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 0.5), Some(50.0));
    }

    #[test]
    fn metrics_command_reports_histograms_and_spans() {
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n\
                      {\"cmd\":\"ping\"}\n{\"cmd\":\"metrics\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(script, DaemonOptions::default());
        let metrics = lines[3].get("metrics").unwrap();
        // Solver counters from the startup + set_theta solves.
        assert!(
            metrics
                .get("counters")
                .unwrap()
                .get("solver_iterations_total")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        // Degraded-serving counters pre-registered at zero on healthy runs.
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("degraded_solves")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("daemon_overload_shed_total")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        // Per-command latency histograms, one per observed command label.
        let histograms = metrics.get("histograms").unwrap().as_arr().unwrap();
        let names: Vec<&str> = histograms
            .iter()
            .map(|h| h.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"daemon_resolve_latency_ms{mode=\"cold\"}"));
        assert!(names.contains(&"daemon_resolve_latency_ms{mode=\"warm\"}"));
        assert!(names.contains(&"daemon_command_latency_ms{cmd=\"ping\"}"));
        assert!(names.contains(&"daemon_command_latency_ms{cmd=\"set_theta\"}"));
        for h in histograms {
            let buckets = h.get("buckets").unwrap().as_arr().unwrap();
            assert_eq!(buckets.len(), nws_obs::LATENCY_BUCKETS_MS.len() + 1);
        }
        // Solver phase spans: "solve" roots with nested phases.
        let spans = metrics.get("spans").unwrap().as_arr().unwrap();
        let solve = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("solve"))
            .expect("solve span present");
        assert_eq!(solve.get("depth").unwrap().as_u64(), Some(0));
        assert_eq!(solve.get("count").unwrap().as_u64(), Some(2));
        assert!(spans
            .iter()
            .any(|s| s.get("name").unwrap().as_str() == Some("line_search")
                && s.get("depth").unwrap().as_u64() == Some(1)));
    }

    #[test]
    fn metrics_out_writes_exposition() {
        let dir = std::env::temp_dir().join("nws_service_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics_serve.prom");
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n{\"cmd\":\"shutdown\"}\n";
        let (_, _) = run_script(
            script,
            DaemonOptions {
                metrics_out: Some(path.to_string_lossy().into_owned()),
                trace: true,
                ..DaemonOptions::default()
            },
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# TYPE solver_iterations_total counter"));
        assert!(text.contains("# TYPE daemon_command_latency_ms histogram"));
        assert!(text.contains("daemon_command_latency_ms_bucket{cmd=\"set_theta\",le=\"+Inf\"}"));
        assert!(text.contains("daemon_resolve_latency_ms_bucket{mode=\"warm\",le=\"+Inf\"}"));
        // Degraded-mode instruments always present (zero when healthy).
        assert!(text.contains("degraded_solves 0"));
        assert!(text.contains("daemon_overload_shed_total 0"));
        assert!(text.contains("persistence_degraded 0"));
        assert!(text.contains("# span solve"), "trace appends span tree");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn stats_reflect_traffic() {
        let script = "{\"cmd\":\"ping\"}\n{\"cmd\":\"set_theta\",\"theta\":70000}\n\
                      {\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(script, DaemonOptions::default());
        let stats = lines[3].get("stats").unwrap();
        // ping + set_theta + stats itself, counted before the response.
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(3.0));
        assert_eq!(stats.get("resolves").unwrap().as_f64(), Some(2.0)); // hello + set_theta
        assert_eq!(stats.get("warm_resolves").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("degraded_solves").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("shed").unwrap().as_u64(), Some(0));
        assert_eq!(
            stats
                .get("per_command")
                .unwrap()
                .get("set_theta")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
