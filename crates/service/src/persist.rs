//! Durable persistence for the daemon: glue between [`ServiceState`] and
//! the payload-agnostic `nws-store` WAL.
//!
//! The division of labour: `nws-store` owns framing, fsync, rotation, and
//! torn-tail repair over opaque single-line payloads; this module owns
//! *what* those payloads are — journaled state-changing requests (their
//! [`crate::protocol::Request::to_json`] wire form) and
//! [`ServiceState::persisted`] snapshot documents — and how to replay them.
//!
//! Recovery is deterministic by construction: the snapshot restores the
//! exact installed rate vector (bit-for-bit, via shortest-roundtrip f64
//! text), and replay re-applies the journaled suffix through the same
//! [`ServiceState::apply_event`] path the live daemon used. When a journal
//! exists but no snapshot does, recovery first mirrors the original
//! process's startup solve, so the first replayed event warm-starts from
//! the same configuration it did originally.

use crate::json::{obj, parse, Json};
use crate::protocol::{parse_command, Request};
use crate::state::ServiceState;
use crate::ServiceError;
use nws_obs::Recorder;
use nws_store::{FaultPlan, FsyncPolicy, RealIo, Store, StoreError, StoreOptions};
use std::path::PathBuf;
use std::time::Instant;

/// Persistence configuration carried in
/// [`crate::daemon::DaemonOptions::persist`].
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// State directory (created if missing).
    pub dir: PathBuf,
    /// WAL fsync policy (`--fsync`, default `always`).
    pub fsync: FsyncPolicy,
    /// Appends between automatic snapshots (`--snapshot-every`,
    /// default 32; clamped to ≥ 1).
    pub snapshot_every: u64,
    /// Deterministic store-fault schedule (chaos harness only; `None` in
    /// production). Routed into the store's injectable I/O layer.
    pub fault: Option<FaultPlan>,
}

impl PersistConfig {
    /// Defaults: fsync `always`, snapshot every 32 appends, no faults.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 32,
            fault: None,
        }
    }
}

/// Why opening the state store failed, split by the reaction it demands.
///
/// The daemon must *not* treat these uniformly: refusing to start over a
/// transient filesystem error would turn every disk hiccup into an outage,
/// while serving on top of another live daemon's directory or a journal
/// the binary cannot replay would corrupt state. The variant encodes that
/// judgement at the layer that has the information to make it.
#[derive(Debug)]
pub enum OpenError {
    /// Must abort: a live lock conflict, or a snapshot/journal that
    /// exists but cannot be parsed or replayed (corrupt-by-definition —
    /// serving would silently drop acknowledged state changes).
    Fatal(ServiceError),
    /// A pure I/O failure: the daemon may keep serving from its startup
    /// state with persistence *degraded* (nothing durable, journal off).
    Degradable(ServiceError),
}

impl OpenError {
    /// The underlying service error, whichever severity it carries.
    pub fn into_inner(self) -> ServiceError {
        match self {
            OpenError::Fatal(e) | OpenError::Degradable(e) => e,
        }
    }
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Fatal(e) | OpenError::Degradable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OpenError {}

fn open_err(e: StoreError) -> OpenError {
    match e {
        StoreError::Locked { .. } => OpenError::Fatal(store_err(e)),
        StoreError::Io { .. } | StoreError::Invalid(_) => OpenError::Degradable(store_err(e)),
    }
}

/// What boot-time recovery did, reported in the daemon's `hello` line and
/// the bench report.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false = cold directory or WAL-only).
    pub snapshot_loaded: bool,
    /// Journaled events re-applied after the snapshot.
    pub replayed_events: u64,
    /// Torn/corrupt WAL bytes discarded by the store.
    pub truncated_bytes: u64,
    /// Wall time of the whole recovery (including replay solves), ms.
    pub wall_ms: f64,
    /// Idempotency keys (`request_id`) carried by the replayed records,
    /// in replay order. The daemon re-seeds its dedup window from these,
    /// so a client retrying a mutation across a daemon crash still gets
    /// a duplicate ack instead of a second application.
    pub replayed_request_ids: Vec<String>,
}

impl RecoveryReport {
    /// The report as the `"recovered"` JSON payload.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("snapshot", Json::Bool(self.snapshot_loaded)),
            ("replayed_events", Json::UInt(self.replayed_events)),
            ("truncated_bytes", Json::UInt(self.truncated_bytes)),
            ("wall_ms", Json::Num(self.wall_ms)),
            (
                "replayed_request_ids",
                Json::UInt(self.replayed_request_ids.len() as u64),
            ),
        ])
    }
}

/// The daemon-facing handle: journals applied requests, writes periodic
/// and final snapshots, and surfaces WAL statistics.
#[derive(Debug)]
pub struct StateStore {
    store: Store,
    snapshot_every: u64,
    since_snapshot: u64,
}

fn store_err(e: StoreError) -> ServiceError {
    ServiceError::State(format!("state store: {e}"))
}

impl StateStore {
    /// Opens the state directory and brings `state` up to date: restore
    /// the newest snapshot, then replay the journaled suffix through
    /// [`ServiceState::apply_event`] (snapshot/rollback via their own
    /// paths). Torn WAL tails were already truncated by the store.
    ///
    /// # Errors
    /// [`OpenError::Fatal`] for lock conflicts and for schema or replay
    /// failures (a journal the current binary cannot re-apply is
    /// corrupt-by-definition and must not be served);
    /// [`OpenError::Degradable`] for plain I/O failures, which the daemon
    /// answers by serving without durability rather than refusing to start.
    pub fn open(
        cfg: &PersistConfig,
        state: &mut ServiceState,
        recorder: &Recorder,
    ) -> Result<(Self, RecoveryReport), OpenError> {
        let t0 = Instant::now();
        let io: Box<dyn nws_store::Io> = match cfg.fault {
            Some(plan) => Box::new(plan.io()),
            None => Box::new(RealIo),
        };
        let (store, recovery) =
            Store::open_with_io(&cfg.dir, StoreOptions { fsync: cfg.fsync }, recorder, io)
                .map_err(open_err)?;
        let snapshot_loaded = recovery.snapshot.is_some();
        if let Some((seq, payload)) = &recovery.snapshot {
            let doc = parse(payload).map_err(|e| {
                OpenError::Fatal(ServiceError::State(format!(
                    "snapshot {seq} unparseable: {e}"
                )))
            })?;
            state.restore_persisted(&doc).map_err(OpenError::Fatal)?;
        }
        let mut replayed = 0u64;
        let mut replayed_request_ids: Vec<String> = Vec::new();
        if !recovery.records.is_empty() {
            if state.installed().is_none() {
                // The original process ran its startup solve before the
                // first journaled event; mirror it so replayed events
                // warm-start from the identical configuration.
                state.resolve(false).map_err(OpenError::Fatal)?;
            }
            for (seq, payload) in &recovery.records {
                let doc = parse(payload).map_err(|e| {
                    OpenError::Fatal(ServiceError::State(format!(
                        "WAL record {seq} unparseable: {e}"
                    )))
                })?;
                let req = parse_command(&doc).map_err(|e| {
                    OpenError::Fatal(ServiceError::State(format!(
                        "WAL record {seq} unparseable: {e}"
                    )))
                })?;
                replay(state, &req).map_err(|e| {
                    OpenError::Fatal(ServiceError::State(format!(
                        "WAL record {seq} ('{}') failed to replay: {e}",
                        req.name()
                    )))
                })?;
                collect_request_ids(&doc, &mut replayed_request_ids);
                replayed += 1;
            }
        }
        recorder.counter_add("recovery_replayed_events", replayed);
        let report = RecoveryReport {
            snapshot_loaded,
            replayed_events: replayed,
            truncated_bytes: recovery.truncated_bytes,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            replayed_request_ids,
        };
        Ok((
            StateStore {
                store,
                snapshot_every: cfg.snapshot_every.max(1),
                since_snapshot: 0,
            },
            report,
        ))
    }

    /// Journals a request the daemon just applied successfully. Every
    /// `snapshot_every` appends, a snapshot of `state` is written and the
    /// WAL rotates + compacts.
    ///
    /// # Errors
    /// I/O failures from the store.
    /// `request_ids` are the idempotency keys of the client request(s)
    /// this record commits (several for a coalesced batch); they ride in
    /// the record as a `request_ids` array so recovery can re-seed the
    /// daemon's dedup window.
    pub fn record_applied(
        &mut self,
        req: &Request,
        state: &ServiceState,
        request_ids: &[&str],
    ) -> Result<(), ServiceError> {
        debug_assert!(req.is_state_changing(), "journal only state changes");
        let mut payload = req.to_json();
        if let (Json::Obj(pairs), false) = (&mut payload, request_ids.is_empty()) {
            pairs.push((
                "request_ids".to_string(),
                Json::Arr(
                    request_ids
                        .iter()
                        .map(|id| Json::Str((*id).to_string()))
                        .collect(),
                ),
            ));
        }
        self.store.append(&payload.encode()).map_err(store_err)?;
        self.since_snapshot += 1;
        if self.since_snapshot >= self.snapshot_every {
            self.write_snapshot(state)?;
        }
        Ok(())
    }

    /// Writes a full-state snapshot now (also rotates + compacts the WAL).
    /// The daemon calls this on every clean exit, so a clean-stop recovery
    /// loads one snapshot and replays nothing.
    ///
    /// # Errors
    /// I/O failures from the store.
    pub fn write_snapshot(&mut self, state: &ServiceState) -> Result<(), ServiceError> {
        self.store
            .snapshot(&state.persisted().encode())
            .map_err(store_err)?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// The `wal_stats` section of the `metrics` response.
    pub fn wal_stats_json(&self) -> Json {
        let s = self.store.wal_stats();
        obj(vec![
            ("policy", Json::Str(s.policy)),
            ("appends", Json::UInt(s.appends)),
            ("appended_bytes", Json::UInt(s.appended_bytes)),
            ("fsyncs", Json::UInt(s.fsyncs)),
            ("snapshots", Json::UInt(s.snapshots)),
            ("last_seq", Json::UInt(s.last_seq)),
            ("truncated_bytes", Json::UInt(s.truncated_bytes)),
        ])
    }
}

/// Collects the `request_ids` array (if any) of one journaled record.
/// Malformed entries are skipped rather than fatal: ids only gate
/// duplicate *acks*; the state change itself already replayed.
fn collect_request_ids(doc: &Json, out: &mut Vec<String>) {
    if let Some(Json::Arr(ids)) = doc.get("request_ids") {
        for id in ids {
            if let Json::Str(id) = id {
                out.push(id.clone());
            }
        }
    }
}

/// Re-applies one journaled request during recovery.
fn replay(state: &mut ServiceState, req: &Request) -> Result<(), ServiceError> {
    match req {
        Request::Snapshot => {
            state.snapshot();
            Ok(())
        }
        Request::Rollback => state.rollback().map(|_| ()),
        r if r.is_mutating() => state.apply_event(r, false).map(|_| ()),
        other => Err(ServiceError::State(format!(
            "'{}' is not a state-changing command",
            other.name()
        ))),
    }
}
