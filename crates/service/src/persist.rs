//! Durable persistence for the daemon: glue between [`ServiceState`] and
//! the payload-agnostic `nws-store` WAL.
//!
//! The division of labour: `nws-store` owns framing, fsync, rotation, and
//! torn-tail repair over opaque single-line payloads; this module owns
//! *what* those payloads are — journaled state-changing requests (their
//! [`crate::protocol::Request::to_json`] wire form) and
//! [`ServiceState::persisted`] snapshot documents — and how to replay them.
//!
//! Recovery is deterministic by construction: the snapshot restores the
//! exact installed rate vector (bit-for-bit, via shortest-roundtrip f64
//! text), and replay re-applies the journaled suffix through the same
//! [`ServiceState::apply_event`] path the live daemon used. When a journal
//! exists but no snapshot does, recovery first mirrors the original
//! process's startup solve, so the first replayed event warm-starts from
//! the same configuration it did originally.

use crate::json::{obj, parse, Json};
use crate::protocol::{parse_request, Request};
use crate::state::ServiceState;
use crate::ServiceError;
use nws_obs::Recorder;
use nws_store::{FsyncPolicy, Store, StoreError, StoreOptions};
use std::path::PathBuf;
use std::time::Instant;

/// Persistence configuration carried in
/// [`crate::daemon::DaemonOptions::persist`].
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// State directory (created if missing).
    pub dir: PathBuf,
    /// WAL fsync policy (`--fsync`, default `always`).
    pub fsync: FsyncPolicy,
    /// Appends between automatic snapshots (`--snapshot-every`,
    /// default 32; clamped to ≥ 1).
    pub snapshot_every: u64,
}

impl PersistConfig {
    /// Defaults: fsync `always`, snapshot every 32 appends.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 32,
        }
    }
}

/// What boot-time recovery did, reported in the daemon's `hello` line and
/// the bench report.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false = cold directory or WAL-only).
    pub snapshot_loaded: bool,
    /// Journaled events re-applied after the snapshot.
    pub replayed_events: u64,
    /// Torn/corrupt WAL bytes discarded by the store.
    pub truncated_bytes: u64,
    /// Wall time of the whole recovery (including replay solves), ms.
    pub wall_ms: f64,
}

impl RecoveryReport {
    /// The report as the `"recovered"` JSON payload.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("snapshot", Json::Bool(self.snapshot_loaded)),
            ("replayed_events", Json::UInt(self.replayed_events)),
            ("truncated_bytes", Json::UInt(self.truncated_bytes)),
            ("wall_ms", Json::Num(self.wall_ms)),
        ])
    }
}

/// The daemon-facing handle: journals applied requests, writes periodic
/// and final snapshots, and surfaces WAL statistics.
#[derive(Debug)]
pub struct StateStore {
    store: Store,
    snapshot_every: u64,
    since_snapshot: u64,
}

fn store_err(e: StoreError) -> ServiceError {
    ServiceError::State(format!("state store: {e}"))
}

impl StateStore {
    /// Opens the state directory and brings `state` up to date: restore
    /// the newest snapshot, then replay the journaled suffix through
    /// [`ServiceState::apply_event`] (snapshot/rollback via their own
    /// paths). Torn WAL tails were already truncated by the store.
    ///
    /// # Errors
    /// Lock conflicts and I/O failures from the store; schema or replay
    /// failures from the service layer (a journal the current binary
    /// cannot re-apply is corrupt-by-definition and must not be served).
    pub fn open(
        cfg: &PersistConfig,
        state: &mut ServiceState,
        recorder: &Recorder,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let t0 = Instant::now();
        let (store, recovery) =
            Store::open(&cfg.dir, StoreOptions { fsync: cfg.fsync }, recorder)
                .map_err(store_err)?;
        let snapshot_loaded = recovery.snapshot.is_some();
        if let Some((seq, payload)) = &recovery.snapshot {
            let doc = parse(payload)
                .map_err(|e| ServiceError::State(format!("snapshot {seq} unparseable: {e}")))?;
            state.restore_persisted(&doc)?;
        }
        let mut replayed = 0u64;
        if !recovery.records.is_empty() {
            if state.installed().is_none() {
                // The original process ran its startup solve before the
                // first journaled event; mirror it so replayed events
                // warm-start from the identical configuration.
                state.resolve(false)?;
            }
            for (seq, payload) in &recovery.records {
                let req = parse_request(payload).map_err(|e| {
                    ServiceError::State(format!("WAL record {seq} unparseable: {e}"))
                })?;
                replay(state, &req).map_err(|e| {
                    ServiceError::State(format!(
                        "WAL record {seq} ('{}') failed to replay: {e}",
                        req.name()
                    ))
                })?;
                replayed += 1;
            }
        }
        recorder.counter_add("recovery_replayed_events", replayed);
        let report = RecoveryReport {
            snapshot_loaded,
            replayed_events: replayed,
            truncated_bytes: recovery.truncated_bytes,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        Ok((
            StateStore {
                store,
                snapshot_every: cfg.snapshot_every.max(1),
                since_snapshot: 0,
            },
            report,
        ))
    }

    /// Journals a request the daemon just applied successfully. Every
    /// `snapshot_every` appends, a snapshot of `state` is written and the
    /// WAL rotates + compacts.
    ///
    /// # Errors
    /// I/O failures from the store.
    pub fn record_applied(
        &mut self,
        req: &Request,
        state: &ServiceState,
    ) -> Result<(), ServiceError> {
        debug_assert!(req.is_state_changing(), "journal only state changes");
        self.store
            .append(&req.to_json().encode())
            .map_err(store_err)?;
        self.since_snapshot += 1;
        if self.since_snapshot >= self.snapshot_every {
            self.write_snapshot(state)?;
        }
        Ok(())
    }

    /// Writes a full-state snapshot now (also rotates + compacts the WAL).
    /// The daemon calls this on every clean exit, so a clean-stop recovery
    /// loads one snapshot and replays nothing.
    ///
    /// # Errors
    /// I/O failures from the store.
    pub fn write_snapshot(&mut self, state: &ServiceState) -> Result<(), ServiceError> {
        self.store
            .snapshot(&state.persisted().encode())
            .map_err(store_err)?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// The `wal_stats` section of the `metrics` response.
    pub fn wal_stats_json(&self) -> Json {
        let s = self.store.wal_stats();
        obj(vec![
            ("policy", Json::Str(s.policy)),
            ("appends", Json::UInt(s.appends)),
            ("appended_bytes", Json::UInt(s.appended_bytes)),
            ("fsyncs", Json::UInt(s.fsyncs)),
            ("snapshots", Json::UInt(s.snapshots)),
            ("last_seq", Json::UInt(s.last_seq)),
            ("truncated_bytes", Json::UInt(s.truncated_bytes)),
        ])
    }
}

/// Re-applies one journaled request during recovery.
fn replay(state: &mut ServiceState, req: &Request) -> Result<(), ServiceError> {
    match req {
        Request::Snapshot => {
            state.snapshot();
            Ok(())
        }
        Request::Rollback => state.rollback().map(|_| ()),
        r if r.is_mutating() => state.apply_event(r, false).map(|_| ()),
        other => Err(ServiceError::State(format!(
            "'{}' is not a state-changing command",
            other.name()
        ))),
    }
}
