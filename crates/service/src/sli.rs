//! SLI-grade health rates: per-second ring buffers behind the `health`
//! command's 1s/10s/60s windows (sandbox-quant RFC 0019 model).
//!
//! Cumulative counters answer "how much, ever"; an operator paging on a
//! `health` probe needs "how much, *now*". Each tracked event kind
//! (requests, lock-free reads, queued mutations, sheds, degraded solves,
//! error responses) gets a ring of [`SLOTS`] per-second buckets stamped
//! with their absolute second, so rates over the last 1/10/60 seconds are
//! a sum over recently-stamped slots — no locks, no allocation, safe to
//! read from every connection thread concurrently with the event loop.
//!
//! Classification folds the windows into one OK/WARN/CRIT verdict
//! (thresholds below), exported as the `"sli"` field of `health` and the
//! `sli_state` gauge. Two threads racing into a *new* second may both
//! reset the slot and lose one increment; rates are diagnostics, not
//! billing, and the window sums stay within one event of exact.

use crate::json::{obj, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Ring size: enough for the 60 s window plus the current partial second,
/// with slack so a slow reader never wraps into live slots.
const SLOTS: usize = 64;

/// Shed-to-request ratio over 10 s at or above this is WARN.
pub const SHED_RATIO_WARN: f64 = 0.01;
/// Shed-to-request ratio over 10 s at or above this is CRIT.
pub const SHED_RATIO_CRIT: f64 = 0.05;
/// Error-to-request ratio over 10 s at or above this is WARN.
pub const ERROR_RATIO_WARN: f64 = 0.05;
/// Error-to-request ratio over 10 s at or above this is CRIT.
pub const ERROR_RATIO_CRIT: f64 = 0.25;
/// Degraded solves per second over 60 s at or above this is WARN.
pub const DEGRADED_RATE_WARN: f64 = 0.1;
/// Degraded solves per second over 10 s at or above this is CRIT.
pub const DEGRADED_RATE_CRIT: f64 = 1.0;

/// The event kinds tracked by the rate windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Every request that reached the daemon (served, queued, or shed).
    Request,
    /// Read-only commands answered from the published snapshot.
    Read,
    /// Requests that went through the bounded mutation queue.
    Mutate,
    /// Requests rejected by the overload shedder.
    Shed,
    /// Re-solves that exhausted their budget (served degraded).
    DegradedSolve,
    /// Error responses (malformed lines, rejected events).
    Error,
}

impl Kind {
    const ALL: [Kind; 6] = [
        Kind::Request,
        Kind::Read,
        Kind::Mutate,
        Kind::Shed,
        Kind::DegradedSolve,
        Kind::Error,
    ];

    fn index(self) -> usize {
        match self {
            Kind::Request => 0,
            Kind::Read => 1,
            Kind::Mutate => 2,
            Kind::Shed => 3,
            Kind::DegradedSolve => 4,
            Kind::Error => 5,
        }
    }

    /// The wire name used in the `health` payload's `rates` object.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Request => "requests",
            Kind::Read => "reads",
            Kind::Mutate => "mutates",
            Kind::Shed => "shed",
            Kind::DegradedSolve => "degraded_solves",
            Kind::Error => "errors",
        }
    }
}

/// The folded OK/WARN/CRIT verdict over the rate windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SliLevel {
    /// All windows under their warning thresholds.
    Ok,
    /// At least one window crossed a warning threshold.
    Warn,
    /// At least one window crossed a critical threshold.
    Crit,
}

impl SliLevel {
    /// The wire name (`health`'s `"sli"` field).
    pub fn as_str(self) -> &'static str {
        match self {
            SliLevel::Ok => "ok",
            SliLevel::Warn => "warn",
            SliLevel::Crit => "crit",
        }
    }

    /// Gauge encoding: 0 = ok, 1 = warn, 2 = crit.
    pub fn as_gauge(self) -> f64 {
        match self {
            SliLevel::Ok => 0.0,
            SliLevel::Warn => 1.0,
            SliLevel::Crit => 2.0,
        }
    }
}

/// One per-second ring: slot `s % SLOTS` holds the count for absolute
/// second `s`, tagged with `s + 1` (0 = never written) so stale laps are
/// detected without a clear pass.
#[derive(Debug)]
struct Ring {
    stamps: [AtomicU64; SLOTS],
    counts: [AtomicU64; SLOTS],
}

impl Ring {
    fn new() -> Self {
        Ring {
            stamps: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, now_s: u64) {
        let idx = (now_s as usize) % SLOTS;
        let stamp = now_s + 1;
        if self.stamps[idx].load(Ordering::Acquire) != stamp {
            // First event of a new second in this slot: retire the lap.
            self.counts[idx].store(0, Ordering::Relaxed);
            self.stamps[idx].store(stamp, Ordering::Release);
        }
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Events in the window of `window_s` seconds ending at `now_s`
    /// inclusive (i.e. seconds `now_s - window_s + 1 ..= now_s`).
    fn sum(&self, now_s: u64, window_s: u64) -> u64 {
        debug_assert!((window_s as usize) < SLOTS);
        let mut total = 0;
        let first = now_s.saturating_sub(window_s.saturating_sub(1));
        for s in first..=now_s {
            let idx = (s as usize) % SLOTS;
            if self.stamps[idx].load(Ordering::Acquire) == s + 1 {
                total += self.counts[idx].load(Ordering::Relaxed);
            }
        }
        total
    }
}

/// The daemon's rate-window instrument set: one ring per [`Kind`], plus a
/// start instant so callers can use wall-clock seconds without threading a
/// clock around. All methods take `&self` and are thread-safe.
#[derive(Debug)]
pub struct RateWindows {
    start: Instant,
    rings: [Ring; 6],
}

impl Default for RateWindows {
    fn default() -> Self {
        Self::new()
    }
}

impl RateWindows {
    /// Fresh windows with all counts empty.
    pub fn new() -> Self {
        RateWindows {
            start: Instant::now(),
            rings: std::array::from_fn(|_| Ring::new()),
        }
    }

    /// Seconds since the daemon started, the time base for all windows.
    pub fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Counts one event of `kind` at the current second.
    pub fn record(&self, kind: Kind) {
        self.record_at(kind, self.now_s());
    }

    /// Counts one event of `kind` at an explicit second (tests).
    pub fn record_at(&self, kind: Kind, now_s: u64) {
        self.rings[kind.index()].record(now_s);
    }

    /// Events of `kind` in the trailing `window_s`-second window.
    pub fn count_at(&self, kind: Kind, now_s: u64, window_s: u64) -> u64 {
        self.rings[kind.index()].sum(now_s, window_s)
    }

    /// Mean events/second of `kind` over the trailing window.
    pub fn rate_at(&self, kind: Kind, now_s: u64, window_s: u64) -> f64 {
        self.count_at(kind, now_s, window_s) as f64 / window_s as f64
    }

    /// The `health` payload's `rates` object: events/second for every
    /// kind over the 1 s / 10 s / 60 s windows.
    pub fn rates_json_at(&self, now_s: u64) -> Json {
        let window = |w: u64| {
            Json::Obj(
                Kind::ALL
                    .iter()
                    .map(|&k| (k.name().to_string(), Json::Num(self.rate_at(k, now_s, w))))
                    .collect(),
            )
        };
        obj(vec![
            ("1s", window(1)),
            ("10s", window(10)),
            ("60s", window(60)),
        ])
    }

    /// Same, at the current second.
    pub fn rates_json(&self) -> Json {
        self.rates_json_at(self.now_s())
    }

    /// Folds the windows into OK/WARN/CRIT plus the reasons that fired.
    ///
    /// Ratios are evaluated over the 10 s window (short enough to page on,
    /// long enough to smooth bursts); the degraded-solve WARN uses the
    /// 60 s window so a single slow solve is visible, while CRIT requires
    /// a sustained 10 s rate. Empty windows classify OK: no traffic is not
    /// an incident.
    pub fn classify_at(&self, now_s: u64) -> (SliLevel, Vec<&'static str>) {
        let requests_10s = self.count_at(Kind::Request, now_s, 10);
        let shed_ratio = if requests_10s == 0 {
            0.0
        } else {
            self.count_at(Kind::Shed, now_s, 10) as f64 / requests_10s as f64
        };
        let error_ratio = if requests_10s == 0 {
            0.0
        } else {
            self.count_at(Kind::Error, now_s, 10) as f64 / requests_10s as f64
        };
        let degraded_60s = self.rate_at(Kind::DegradedSolve, now_s, 60);
        let degraded_10s = self.rate_at(Kind::DegradedSolve, now_s, 10);

        let mut level = SliLevel::Ok;
        let mut reasons = Vec::new();
        let mut fire = |l: SliLevel, reason: &'static str| {
            level = level.max(l);
            reasons.push(reason);
        };
        if shed_ratio >= SHED_RATIO_CRIT {
            fire(SliLevel::Crit, "shed_ratio_10s_crit");
        } else if shed_ratio >= SHED_RATIO_WARN {
            fire(SliLevel::Warn, "shed_ratio_10s_warn");
        }
        if error_ratio >= ERROR_RATIO_CRIT {
            fire(SliLevel::Crit, "error_ratio_10s_crit");
        } else if error_ratio >= ERROR_RATIO_WARN {
            fire(SliLevel::Warn, "error_ratio_10s_warn");
        }
        if degraded_10s >= DEGRADED_RATE_CRIT {
            fire(SliLevel::Crit, "degraded_solve_rate_10s_crit");
        } else if degraded_60s >= DEGRADED_RATE_WARN {
            fire(SliLevel::Warn, "degraded_solve_rate_60s_warn");
        }
        (level, reasons)
    }

    /// Same, at the current second.
    pub fn classify(&self) -> (SliLevel, Vec<&'static str>) {
        self.classify_at(self.now_s())
    }

    /// Pushes the window rates and verdict into `recorder` as gauges
    /// (`sli_<kind>_rate_<window>` plus `sli_state`).
    pub fn export_gauges(&self, recorder: &nws_obs::Recorder) {
        let now_s = self.now_s();
        recorder.gauge_set("sli_request_rate_1s", self.rate_at(Kind::Request, now_s, 1));
        recorder.gauge_set(
            "sli_request_rate_10s",
            self.rate_at(Kind::Request, now_s, 10),
        );
        recorder.gauge_set(
            "sli_request_rate_60s",
            self.rate_at(Kind::Request, now_s, 60),
        );
        recorder.gauge_set("sli_read_rate_10s", self.rate_at(Kind::Read, now_s, 10));
        recorder.gauge_set("sli_mutate_rate_10s", self.rate_at(Kind::Mutate, now_s, 10));
        recorder.gauge_set("sli_shed_rate_10s", self.rate_at(Kind::Shed, now_s, 10));
        recorder.gauge_set("sli_error_rate_10s", self.rate_at(Kind::Error, now_s, 10));
        recorder.gauge_set(
            "sli_degraded_solve_rate_60s",
            self.rate_at(Kind::DegradedSolve, now_s, 60),
        );
        recorder.gauge_set("sli_state", self.classify_at(now_s).0.as_gauge());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_n(w: &RateWindows, kind: Kind, now_s: u64, n: u64) {
        for _ in 0..n {
            w.record_at(kind, now_s);
        }
    }

    #[test]
    fn empty_windows_are_zero_and_ok() {
        let w = RateWindows::new();
        for k in Kind::ALL {
            assert_eq!(w.count_at(k, 100, 60), 0);
            assert_eq!(w.rate_at(k, 100, 10), 0.0);
        }
        let (level, reasons) = w.classify_at(100);
        assert_eq!(level, SliLevel::Ok);
        assert!(reasons.is_empty());
    }

    #[test]
    fn windows_sum_only_their_span() {
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 100, 5); // current second
        record_n(&w, Kind::Request, 95, 3); // inside 10s, outside 1s
        record_n(&w, Kind::Request, 50, 7); // inside 60s, outside 10s
        assert_eq!(w.count_at(Kind::Request, 100, 1), 5);
        assert_eq!(w.count_at(Kind::Request, 100, 10), 8);
        assert_eq!(w.count_at(Kind::Request, 100, 60), 15);
        // Rates are per second over the window length.
        assert!((w.rate_at(Kind::Request, 100, 10) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rollover_retires_stale_laps() {
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 10, 9);
        assert_eq!(w.count_at(Kind::Request, 10, 1), 9);
        // SLOTS seconds later the same slot index is a different second:
        // the old count must not leak into the new lap.
        let later = 10 + SLOTS as u64;
        record_n(&w, Kind::Request, later, 2);
        assert_eq!(w.count_at(Kind::Request, later, 1), 2);
        assert_eq!(w.count_at(Kind::Request, later, 60), 2);
        // And the retired second no longer answers for its old stamp.
        assert_eq!(w.count_at(Kind::Request, 10, 1), 0);
    }

    #[test]
    fn window_at_second_zero_does_not_underflow() {
        let w = RateWindows::new();
        w.record_at(Kind::Request, 0);
        assert_eq!(w.count_at(Kind::Request, 0, 60), 1);
        assert_eq!(w.count_at(Kind::Request, 0, 1), 1);
    }

    #[test]
    fn shed_ratio_threshold_edges() {
        // Exactly 1% shed over 10s: WARN fires (thresholds are >=).
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 100, 99);
        w.record_at(Kind::Request, 100);
        w.record_at(Kind::Shed, 100);
        let (level, reasons) = w.classify_at(100);
        assert_eq!(level, SliLevel::Warn);
        assert_eq!(reasons, vec!["shed_ratio_10s_warn"]);

        // Exactly 5%: CRIT.
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 100, 100);
        record_n(&w, Kind::Shed, 100, 5);
        let (level, reasons) = w.classify_at(100);
        assert_eq!(level, SliLevel::Crit);
        assert_eq!(reasons, vec!["shed_ratio_10s_crit"]);

        // Just under 1%: OK.
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 100, 201);
        record_n(&w, Kind::Shed, 100, 2);
        assert_eq!(w.classify_at(100).0, SliLevel::Ok);
    }

    #[test]
    fn degraded_solve_thresholds() {
        // 6 degraded solves over 60s = 0.1/s: WARN edge.
        let w = RateWindows::new();
        for s in 0..6 {
            w.record_at(Kind::DegradedSolve, 60 + s * 9);
        }
        let now = 60 + 5 * 9;
        assert!(w.rate_at(Kind::DegradedSolve, now, 60) >= DEGRADED_RATE_WARN);
        let (level, reasons) = w.classify_at(now);
        assert_eq!(level, SliLevel::Warn);
        assert_eq!(reasons, vec!["degraded_solve_rate_60s_warn"]);

        // 10 in the last 10 seconds = 1.0/s sustained: CRIT.
        let w = RateWindows::new();
        for s in 91..=100 {
            w.record_at(Kind::DegradedSolve, s);
        }
        let (level, reasons) = w.classify_at(100);
        assert_eq!(level, SliLevel::Crit);
        assert_eq!(reasons, vec!["degraded_solve_rate_10s_crit"]);
    }

    #[test]
    fn crit_dominates_warn_and_reasons_accumulate() {
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 100, 100);
        record_n(&w, Kind::Shed, 100, 1); // warn
        record_n(&w, Kind::Error, 100, 30); // crit
        let (level, reasons) = w.classify_at(100);
        assert_eq!(level, SliLevel::Crit);
        assert!(reasons.contains(&"shed_ratio_10s_warn"));
        assert!(reasons.contains(&"error_ratio_10s_crit"));
    }

    #[test]
    fn no_traffic_means_no_ratio_incident() {
        // Sheds with zero requests in-window cannot divide by zero; the
        // request ring counts shed requests too in the daemon, but the
        // classifier must stay well-defined regardless.
        let w = RateWindows::new();
        record_n(&w, Kind::Shed, 100, 5);
        assert_eq!(w.classify_at(100).0, SliLevel::Ok);
    }

    #[test]
    fn rates_json_shape() {
        let w = RateWindows::new();
        record_n(&w, Kind::Request, 100, 20);
        record_n(&w, Kind::Read, 100, 15);
        let j = w.rates_json_at(100);
        for window in ["1s", "10s", "60s"] {
            let win = j.get(window).unwrap();
            for k in Kind::ALL {
                assert!(win.get(k.name()).unwrap().as_f64().is_some());
            }
        }
        assert_eq!(
            j.get("1s").unwrap().get("requests").unwrap().as_f64(),
            Some(20.0)
        );
        assert_eq!(
            j.get("10s").unwrap().get("reads").unwrap().as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn level_order_and_wire_names() {
        assert!(SliLevel::Ok < SliLevel::Warn);
        assert!(SliLevel::Warn < SliLevel::Crit);
        assert_eq!(SliLevel::Ok.as_str(), "ok");
        assert_eq!(SliLevel::Warn.as_gauge(), 1.0);
        assert_eq!(SliLevel::Crit.as_str(), "crit");
    }
}
