//! Verifies the disabled recorder's zero-allocation contract with a
//! counting global allocator. This lives in its own integration-test
//! binary (one test, no threads) so no concurrent test can allocate
//! while the counter window is open.

use nws_obs::Recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_never_allocates() {
    let rec = Recorder::disabled();
    // Warm anything lazy (thread-id caches etc.) outside the window.
    rec.counter_add("warmup", 1);
    drop(rec.span("warmup"));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        rec.counter_add("solver_iterations_total", i);
        rec.gauge_set("daemon_queue_depth", i as f64);
        rec.observe("daemon_resolve_latency_ms", i as f64);
        rec.observe_labeled("daemon_command_latency_ms", "cmd", "ping", i as f64);
        let _span = rec.span("solve");
        let _inner = rec.span("direction");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled recording must stay allocation-free on the hot path"
    );
}
