//! `nws-obs`: a lightweight observability substrate for the nws workspace.
//!
//! Three instrument kinds, all recorded through a shared [`Recorder`]:
//!
//! - **Counters** — monotone `u64` totals (`solver_iterations_total`).
//! - **Gauges** — last-written `f64` values (`daemon_queue_depth`).
//! - **Histograms** — fixed-bucket latency distributions
//!   ([`LATENCY_BUCKETS_MS`]), optionally split by one static label
//!   dimension (`daemon_command_latency_ms{cmd="ping"}`).
//!
//! Plus **trace spans**: scoped RAII phase timers ([`Recorder::span`])
//! that nest by lexical scope and aggregate into a parent/child tree keyed
//! by `(parent, name)` — a 2000-iteration solve collapses into one
//! `solve → direction` node with `count = 2000`, so span memory is bounded
//! by the number of *distinct* phases, not the number of timings.
//!
//! The recorder has a hard performance contract: a *disabled* recorder
//! ([`Recorder::disabled`]) is a no-op sink that never allocates, never
//! takes a lock, and never reads the clock, so instrumented hot paths cost
//! one branch when observability is off. An *enabled* recorder keeps all
//! metric names and label values as `&'static str`, so steady-state
//! recording allocates nothing either (only first-time registration grows
//! the registry's vectors).
//!
//! Snapshots ([`Recorder::snapshot`]) serve two sinks: the daemon's
//! `metrics` command (structured JSON, assembled by `nws-service`) and a
//! deterministic Prometheus-style text exposition
//! ([`Snapshot::exposition`]) with an optional span-tree dump rendered as
//! `# span` comment lines. "Deterministic" means the *format* — metric
//! ordering follows registration order, numbers print exactly — so two
//! runs differ only where the measured values differ.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// Histogram bucket upper bounds in milliseconds, shared by every latency
/// histogram (fixed buckets keep merging and exposition trivial). The last
/// implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_MS: [f64; 13] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
];

/// A metric key: a static name plus at most one static label pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    name: &'static str,
    label: Option<(&'static str, &'static str)>,
}

/// One aggregated span-tree node: all timings of `name` under the same
/// parent chain fold into one node.
#[derive(Debug, Clone)]
struct SpanNode {
    name: &'static str,
    parent: Option<usize>,
    total_ns: u64,
    count: u64,
}

#[derive(Debug, Default)]
struct RegistryState {
    counters: Vec<(Key, u64)>,
    gauges: Vec<(Key, f64)>,
    histograms: Vec<(Key, Histogram)>,
    spans: Vec<SpanNode>,
    /// Per-thread stacks of open span node indices (spans on different
    /// threads nest independently).
    stacks: Vec<(ThreadId, Vec<usize>)>,
}

#[derive(Debug)]
struct Histogram {
    /// One count per [`LATENCY_BUCKETS_MS`] bound, plus a final `+Inf` slot.
    counts: [u64; LATENCY_BUCKETS_MS.len() + 1],
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            counts: [0; LATENCY_BUCKETS_MS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = LATENCY_BUCKETS_MS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct Registry {
    state: Mutex<RegistryState>,
}

impl Registry {
    /// Locks the state, recovering from poisoning — a panicking thread must
    /// not take observability down with it.
    fn lock(&self) -> MutexGuard<'_, RegistryState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The recording handle threaded through instrumented layers. Cloning is
/// cheap and clones share the same registry, so a transaction running on a
/// cloned state still records into the live sink.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// A no-op sink: every recording call is a single branch — no
    /// allocation, no lock, no clock read. This is the [`Default`].
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder with an empty registry.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// Whether recording is live. Instrumentation sites use this to skip
    /// work (clock reads, value computation) that only feeds the recorder.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the monotone counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(reg) = &self.inner else { return };
        let key = Key { name, label: None };
        let mut st = reg.lock();
        match st.counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += delta,
            None => st.counters.push((key, delta)),
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(reg) = &self.inner else { return };
        let key = Key { name, label: None };
        let mut st = reg.lock();
        match st.gauges.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => st.gauges.push((key, value)),
        }
    }

    /// Records `value` into the unlabeled histogram `name`.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.observe_key(Key { name, label: None }, value);
    }

    /// Records `value` into the `name{label_key="label_value"}` histogram.
    /// Label values must be static (command names, mode tags) — the
    /// one-label design is deliberate, keeping recording allocation-free.
    pub fn observe_labeled(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &'static str,
        value: f64,
    ) {
        self.observe_key(
            Key {
                name,
                label: Some((label_key, label_value)),
            },
            value,
        );
    }

    fn observe_key(&self, key: Key, value: f64) {
        let Some(reg) = &self.inner else { return };
        let mut st = reg.lock();
        match st.histograms.iter_mut().find(|(k, _)| *k == key) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                st.histograms.push((key, h));
            }
        }
    }

    /// Opens a trace span; the span closes (and records its elapsed time)
    /// when the returned guard drops. Spans opened while another span on
    /// the same thread is still open become its children.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let Some(reg) = &self.inner else {
            return Span {
                recorder: self,
                started: None,
                node: 0,
            };
        };
        let tid = std::thread::current().id();
        let mut st = reg.lock();
        let parent = st
            .stacks
            .iter()
            .find(|(t, _)| *t == tid)
            .and_then(|(_, stack)| stack.last().copied());
        let node = match st
            .spans
            .iter()
            .position(|n| n.parent == parent && n.name == name)
        {
            Some(i) => i,
            None => {
                st.spans.push(SpanNode {
                    name,
                    parent,
                    total_ns: 0,
                    count: 0,
                });
                st.spans.len() - 1
            }
        };
        match st.stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, stack)) => stack.push(node),
            None => st.stacks.push((tid, vec![node])),
        }
        Span {
            recorder: self,
            started: Some(Instant::now()),
            node,
        }
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let Some(reg) = &self.inner else {
            return Snapshot::default();
        };
        let st = reg.lock();
        let metric = |key: &Key| (key.name, key.label);
        let counters = st
            .counters
            .iter()
            .map(|(k, v)| {
                let (name, label) = metric(k);
                CounterSnapshot {
                    name,
                    label,
                    value: *v,
                }
            })
            .collect();
        let gauges = st
            .gauges
            .iter()
            .map(|(k, v)| {
                let (name, label) = metric(k);
                GaugeSnapshot {
                    name,
                    label,
                    value: *v,
                }
            })
            .collect();
        let histograms = st
            .histograms
            .iter()
            .map(|(k, h)| {
                let (name, label) = metric(k);
                HistogramSnapshot {
                    name,
                    label,
                    bucket_counts: h.counts.to_vec(),
                    sum: h.sum,
                    count: h.count,
                }
            })
            .collect();

        // Flatten the span forest in preorder, children in insertion order.
        let mut spans = Vec::with_capacity(st.spans.len());
        fn descend(
            nodes: &[SpanNode],
            parent: Option<usize>,
            depth: usize,
            out: &mut Vec<SpanSnapshot>,
        ) {
            for (i, n) in nodes.iter().enumerate() {
                if n.parent == parent {
                    out.push(SpanSnapshot {
                        name: n.name,
                        depth,
                        total_ms: n.total_ns as f64 / 1e6,
                        count: n.count,
                    });
                    descend(nodes, Some(i), depth + 1, out);
                }
            }
        }
        descend(&st.spans, None, 0, &mut spans);
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Shorthand for `self.snapshot().exposition(include_spans)`.
    pub fn exposition(&self, include_spans: bool) -> String {
        self.snapshot().exposition(include_spans)
    }
}

/// RAII guard of one open trace span; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a Recorder,
    /// `None` on a disabled recorder — drop then does nothing (and the
    /// clock was never read).
    started: Option<Instant>,
    node: usize,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let elapsed_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let Some(reg) = &self.recorder.inner else {
            return;
        };
        let tid = std::thread::current().id();
        let mut st = reg.lock();
        let node = &mut st.spans[self.node];
        node.total_ns += elapsed_ns;
        node.count += 1;
        if let Some((_, stack)) = st.stacks.iter_mut().find(|(t, _)| *t == tid) {
            let popped = stack.pop();
            debug_assert_eq!(popped, Some(self.node), "span guards drop LIFO");
        }
    }
}

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Optional `(key, value)` label pair.
    pub label: Option<(&'static str, &'static str)>,
    /// Monotone total.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Optional `(key, value)` label pair.
    pub label: Option<(&'static str, &'static str)>,
    /// Last written value.
    pub value: f64,
}

/// One histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Optional `(key, value)` label pair.
    pub label: Option<(&'static str, &'static str)>,
    /// Per-bucket (non-cumulative) counts: one per [`LATENCY_BUCKETS_MS`]
    /// bound plus a final `+Inf` slot.
    pub bucket_counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// One aggregated span at snapshot time, in preorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Phase name.
    pub name: &'static str,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Total time spent in this phase, milliseconds.
    pub total_ms: f64,
    /// Number of times the phase ran.
    pub count: u64,
}

/// A point-in-time copy of a recorder's instruments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counters in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Aggregated spans, preorder over the phase tree.
    pub spans: Vec<SpanSnapshot>,
}

fn write_label(out: &mut String, label: Option<(&str, &str)>) {
    if let Some((k, v)) = label {
        let _ = write!(out, "{{{k}=\"{v}\"}}");
    }
}

impl Snapshot {
    /// The value of the unlabeled counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label.is_none())
            .map(|c| c.value)
    }

    /// The value of the unlabeled gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.label.is_none())
            .map(|g| g.value)
    }

    /// Renders the Prometheus text exposition: `# TYPE` comments grouped by
    /// metric name in first-registration order, one sample per line,
    /// counters emitted as exact integers. With `include_spans`, the span
    /// tree is appended as `# span` comment lines (comments keep the file
    /// valid for any Prometheus text parser).
    pub fn exposition(&self, include_spans: bool) -> String {
        let mut out = String::new();
        for c in &self.counters {
            write_type_once(&mut out, c.name, "counter");
            out.push_str(c.name);
            write_label(&mut out, c.label);
            let _ = writeln!(out, " {}", c.value);
        }
        for g in &self.gauges {
            write_type_once(&mut out, g.name, "gauge");
            out.push_str(g.name);
            write_label(&mut out, g.label);
            let _ = writeln!(out, " {}", g.value);
        }
        // Histograms with the same name (different labels) must sit under
        // one TYPE header; group by first-seen name.
        let mut names: Vec<&'static str> = Vec::new();
        for h in &self.histograms {
            if !names.contains(&h.name) {
                names.push(h.name);
            }
        }
        for name in names {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for h in self.histograms.iter().filter(|h| h.name == name) {
                let mut cumulative = 0u64;
                for (i, &c) in h.bucket_counts.iter().enumerate() {
                    cumulative += c;
                    out.push_str(name);
                    out.push_str("_bucket{");
                    if let Some((k, v)) = h.label {
                        let _ = write!(out, "{k}=\"{v}\",");
                    }
                    match LATENCY_BUCKETS_MS.get(i) {
                        Some(b) => {
                            let _ = writeln!(out, "le=\"{b}\"}} {cumulative}");
                        }
                        None => {
                            let _ = writeln!(out, "le=\"+Inf\"}} {cumulative}");
                        }
                    }
                }
                out.push_str(name);
                out.push_str("_sum");
                write_label(&mut out, h.label);
                let _ = writeln!(out, " {}", h.sum);
                out.push_str(name);
                out.push_str("_count");
                write_label(&mut out, h.label);
                let _ = writeln!(out, " {}", h.count);
            }
        }
        if include_spans {
            out.push_str(&self.span_tree());
        }
        out
    }

    /// The span tree as `# span` comment lines, two spaces of indentation
    /// per nesting level.
    pub fn span_tree(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let mean = if s.count > 0 {
                s.total_ms / s.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "# span {:indent$}{} count={} total_ms={:.3} mean_ms={:.3}",
                "",
                s.name,
                s.count,
                s.total_ms,
                mean,
                indent = 2 * s.depth,
            );
        }
        out
    }
}

/// Writes a `# TYPE` line unless the previous emitted line already declared
/// this name (consecutive same-name metrics share one header).
fn write_type_once(out: &mut String, name: &str, kind: &str) {
    let header = format!("# TYPE {name} {kind}\n");
    if !out.ends_with(&header) {
        out.push_str(&header);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter_add("c", 5);
        rec.gauge_set("g", 1.0);
        rec.observe("h", 0.2);
        {
            let _s = rec.span("solve");
        }
        let snap = rec.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert_eq!(snap.exposition(true), "");
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let rec = Recorder::enabled();
        rec.counter_add("iters_total", 3);
        rec.counter_add("iters_total", 4);
        rec.gauge_set("depth", 2.0);
        rec.gauge_set("depth", 5.0);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 7);
        assert_eq!(snap.gauges[0].value, 5.0);
    }

    #[test]
    fn snapshot_lookup_helpers_find_unlabeled_instruments() {
        let rec = Recorder::enabled();
        rec.counter_add("degraded_solves", 0); // registration at zero
        rec.counter_add("degraded_solves", 2);
        rec.gauge_set("persistence_degraded", 1.0);
        rec.observe_labeled("lat_ms", "cmd", "ping", 0.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("degraded_solves"), Some(2));
        assert_eq!(snap.gauge("persistence_degraded"), Some(1.0));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("nope"), None);
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.counter_add("c", 1);
        rec.counter_add("c", 1);
        assert_eq!(rec.snapshot().counters[0].value, 2);
    }

    #[test]
    fn histogram_buckets_and_labels() {
        let rec = Recorder::enabled();
        rec.observe_labeled("lat_ms", "cmd", "ping", 0.07);
        rec.observe_labeled("lat_ms", "cmd", "ping", 3.0);
        rec.observe_labeled("lat_ms", "cmd", "stats", 2000.0);
        let snap = rec.snapshot();
        assert_eq!(snap.histograms.len(), 2);
        let ping = &snap.histograms[0];
        assert_eq!(ping.label, Some(("cmd", "ping")));
        assert_eq!(ping.count, 2);
        assert!((ping.sum - 3.07).abs() < 1e-12);
        // 0.07 lands in the le=0.1 bucket, 3.0 in le=5.
        assert_eq!(ping.bucket_counts[1], 1);
        assert_eq!(ping.bucket_counts[6], 1);
        // 2000 overflows every bound into +Inf.
        let stats = &snap.histograms[1];
        assert_eq!(stats.bucket_counts[LATENCY_BUCKETS_MS.len()], 1);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let rec = Recorder::enabled();
        for _ in 0..3 {
            let _solve = rec.span("solve");
            {
                let _d = rec.span("direction");
            }
            {
                let _l = rec.span("line_search");
            }
        }
        // A root span with the same name as a child stays separate.
        {
            let _d = rec.span("direction");
        }
        let spans = rec.snapshot().spans;
        let shape: Vec<(&str, usize, u64)> =
            spans.iter().map(|s| (s.name, s.depth, s.count)).collect();
        assert_eq!(
            shape,
            vec![
                ("solve", 0, 3),
                ("direction", 1, 3),
                ("line_search", 1, 3),
                ("direction", 0, 1),
            ]
        );
        // Parents cover their children.
        assert!(spans[0].total_ms >= spans[1].total_ms + spans[2].total_ms);
    }

    #[test]
    fn exposition_is_deterministic_text() {
        let rec = Recorder::enabled();
        rec.counter_add("solver_iterations_total", 12);
        rec.counter_add("solver_releases_total", 2);
        rec.gauge_set("daemon_queue_depth", 3.0);
        rec.observe_labeled("daemon_command_latency_ms", "cmd", "ping", 0.2);
        let text = rec.exposition(false);
        let expected = "\
# TYPE solver_iterations_total counter
solver_iterations_total 12
# TYPE solver_releases_total counter
solver_releases_total 2
# TYPE daemon_queue_depth gauge
daemon_queue_depth 3
# TYPE daemon_command_latency_ms histogram
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"0.05\"} 0
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"0.1\"} 0
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"0.25\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"0.5\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"1\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"2.5\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"5\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"10\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"25\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"50\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"100\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"250\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"1000\"} 1
daemon_command_latency_ms_bucket{cmd=\"ping\",le=\"+Inf\"} 1
daemon_command_latency_ms_sum{cmd=\"ping\"} 0.2
daemon_command_latency_ms_count{cmd=\"ping\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_counters_exact_past_2_pow_53() {
        let rec = Recorder::enabled();
        let big = (1u64 << 53) + 1;
        rec.counter_add("big_total", big);
        let text = rec.exposition(false);
        assert!(
            text.contains(&format!("big_total {big}")),
            "u64 counters must print exactly: {text}"
        );
    }

    #[test]
    fn span_dump_renders_as_comments() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("solve");
            let _d = rec.span("kkt_check");
        }
        let text = rec.exposition(true);
        assert!(text.contains("# span solve count=1"));
        assert!(text.contains("# span   kkt_check count=1"));
        // Every span line is a comment, so the file parses as exposition.
        for line in text.lines().filter(|l| l.contains("span")) {
            assert!(line.starts_with('#'), "span lines are comments: {line}");
        }
    }

    #[test]
    fn spans_on_different_threads_do_not_nest() {
        let rec = Recorder::enabled();
        let _outer = rec.span("outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _inner = rec.span("worker");
            });
        });
        drop(_outer);
        let spans = rec.snapshot().spans;
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.depth, 0, "cross-thread spans are roots");
    }
}
