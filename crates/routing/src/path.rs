//! OD pairs and routed paths.

use nws_topo::{LinkId, NodeId, Topology};

/// An origin–destination pair.
///
/// In the paper's terminology an "origin" or "destination" can be any
/// aggregation level — end host, prefix, AS, PoP (§III). At the routing
/// layer both are topology nodes; higher layers attach semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OdPair {
    /// Origin node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

impl OdPair {
    /// Convenience constructor.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        OdPair { src, dst }
    }
}

/// A loop-free routed path: an ordered sequence of links from the origin to
/// the destination, plus its total IGP cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    links: Vec<LinkId>,
    cost: f64,
}

impl Path {
    /// Creates a path from its link sequence and total cost.
    ///
    /// An empty link sequence (zero-cost path from a node to itself) is
    /// allowed.
    pub(crate) fn new(links: Vec<LinkId>, cost: f64) -> Self {
        Path { links, cost }
    }

    /// The links traversed, in order from origin to destination.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Total IGP cost of the path.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of hops (links).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for the trivial self-path.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether the path traverses `link`.
    pub fn traverses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Renders the path as `"A -> B -> C"` node names for diagnostics.
    pub fn describe(&self, topo: &Topology) -> String {
        if self.links.is_empty() {
            return String::from("(self)");
        }
        let mut s = topo.node(topo.link(self.links[0]).src()).name().to_string();
        for &l in &self.links {
            s.push_str(" -> ");
            s.push_str(topo.node(topo.link(l).dst()).name());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::{LinkKind, TopologyBuilder};

    #[test]
    fn describe_and_accessors() {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let m = b.node("M");
        let z = b.node("Z");
        let am = b.link(a, m, 100.0, 1.0, LinkKind::Backbone);
        let mz = b.link(m, z, 100.0, 2.0, LinkKind::Backbone);
        let t = b.build().unwrap();

        let p = Path::new(vec![am, mz], 3.0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.cost(), 3.0);
        assert!(p.traverses(am));
        assert_eq!(p.describe(&t), "A -> M -> Z");

        let empty = Path::new(vec![], 0.0);
        assert!(empty.is_empty());
        assert_eq!(empty.describe(&t), "(self)");
    }

    #[test]
    fn od_pair_equality() {
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        assert_eq!(OdPair::new(a, b), OdPair { src: a, dst: b });
        assert_ne!(OdPair::new(a, b), OdPair::new(b, a));
    }
}
