//! Link-failure what-if analysis.
//!
//! Short-term traffic variation due to failures and re-routing is one of the
//! paper's core motivations for *re-optimizable* monitor placement (§I). The
//! helpers here derive a post-failure topology so callers can reconverge
//! routing ([`crate::Router`]) and re-run the optimizer, then compare against
//! the stale pre-failure monitor configuration.

use nws_topo::{LinkId, NodeId, Result, Topology, TopologyBuilder};

/// Builds a copy of `topo` with the given links removed.
///
/// Node ids are preserved (all nodes are copied in order); link ids are *not*
/// comparable across the two topologies — use
/// [`link_id_map`] to translate surviving links.
///
/// Failing a single fibre direction is unusual in practice; pass both
/// directions (see [`bidirectional_pair`]) to model a fibre cut.
///
/// # Errors
/// Propagates topology-construction errors (e.g. the surviving graph could
/// be empty). A disconnected survivor is *not* an error here — routing will
/// simply report unreachable destinations, as a real network would.
pub fn without_links(topo: &Topology, failed: &[LinkId]) -> Result<Topology> {
    let mut b = TopologyBuilder::new();
    for nid in topo.node_ids() {
        let n = topo.node(nid);
        let new_id = if n.is_external() {
            b.external_node(n.name())
        } else {
            b.node(n.name())
        };
        debug_assert_eq!(new_id, nid, "node ids preserved by copy order");
    }
    for lid in topo.link_ids() {
        if failed.contains(&lid) {
            continue;
        }
        let l = topo.link(lid);
        b.link(
            l.src(),
            l.dst(),
            l.capacity_mbps(),
            l.igp_weight(),
            l.kind(),
        );
    }
    b.build()
}

/// Both directions of the fibre between `a` and `b`, if present.
/// Convenience for modelling a full fibre cut.
pub fn bidirectional_pair(topo: &Topology, a: NodeId, b: NodeId) -> Vec<LinkId> {
    [topo.link_between(a, b), topo.link_between(b, a)]
        .into_iter()
        .flatten()
        .collect()
}

/// Maps each surviving link of `topo` to its id in the post-failure topology
/// produced by [`without_links`] with the same `failed` list.
/// Entry is `None` for failed links.
pub fn link_id_map(topo: &Topology, failed: &[LinkId]) -> Vec<Option<LinkId>> {
    let mut map = Vec::with_capacity(topo.num_links());
    let mut next = 0u32;
    for lid in topo.link_ids() {
        if failed.contains(&lid) {
            map.push(None);
        } else {
            map.push(Some(LinkId::from_index(next as usize)));
            next += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OdPair, Router};
    use nws_topo::geant;

    #[test]
    fn failing_uk_se_reroutes_pl() {
        let t = geant();
        let uk = t.require_node("UK").unwrap();
        let se = t.require_node("SE").unwrap();
        let pl = t.require_node("PL").unwrap();
        let janet = t.require_node("JANET").unwrap();

        // Before: JANET->PL via UK-SE-PL.
        let r = Router::new(&t);
        let before = r.path(OdPair::new(janet, pl)).unwrap();
        assert!(before.describe(&t).contains("SE"));

        // Fail the UK<->SE fibre.
        let failed = bidirectional_pair(&t, uk, se);
        assert_eq!(failed.len(), 2);
        let t2 = without_links(&t, &failed).unwrap();
        assert_eq!(t2.num_links(), t.num_links() - 2);

        // After: PL still reachable, but not via the failed fibre.
        let r2 = Router::new(&t2);
        let pl2 = t2.require_node("PL").unwrap();
        let janet2 = t2.require_node("JANET").unwrap();
        let after = r2.path(OdPair::new(janet2, pl2)).unwrap();
        assert!(after.cost() > before.cost());
        let desc = after.describe(&t2);
        assert!(
            !desc.contains("UK -> SE"),
            "rerouted path still uses failed fibre: {desc}"
        );
    }

    #[test]
    fn node_ids_preserved() {
        let t = geant();
        let uk = t.require_node("UK").unwrap();
        let fr = t.require_node("FR").unwrap();
        let failed = bidirectional_pair(&t, uk, fr);
        let t2 = without_links(&t, &failed).unwrap();
        assert_eq!(t2.require_node("UK").unwrap(), uk);
        assert_eq!(t2.require_node("FR").unwrap(), fr);
        assert_eq!(t2.num_nodes(), t.num_nodes());
        // External flag preserved.
        let janet2 = t2.require_node("JANET").unwrap();
        assert!(t2.node(janet2).is_external());
    }

    #[test]
    fn link_id_map_consistent() {
        let t = geant();
        let uk = t.require_node("UK").unwrap();
        let nl = t.require_node("NL").unwrap();
        let failed = bidirectional_pair(&t, uk, nl);
        let t2 = without_links(&t, &failed).unwrap();
        let map = link_id_map(&t, &failed);
        assert_eq!(map.len(), t.num_links());
        for lid in t.link_ids() {
            match map[lid.index()] {
                None => assert!(failed.contains(&lid)),
                Some(new_id) => {
                    assert_eq!(t2.link_label(new_id), t.link_label(lid));
                    assert_eq!(t2.link(new_id).igp_weight(), t.link(lid).igp_weight());
                }
            }
        }
    }

    #[test]
    fn empty_failure_list_is_clone() {
        let t = geant();
        let t2 = without_links(&t, &[]).unwrap();
        assert_eq!(t2.num_links(), t.num_links());
        assert_eq!(t2.num_nodes(), t.num_nodes());
    }

    #[test]
    fn disconnected_survivor_graph_degrades_gracefully() {
        let t = geant();
        let uk = t.require_node("UK").unwrap();
        let ie = t.require_node("IE").unwrap();
        // IE is single-homed to UK; cutting the fibre splits the graph into
        // a 22-node component and an isolated {IE}.
        let failed = bidirectional_pair(&t, uk, ie);
        let t2 = without_links(&t, &failed).unwrap();

        // The survivor builds fine but is no longer connected.
        assert!(t2.validate_connected().is_err());

        // Surviving links still translate consistently.
        let map = link_id_map(&t, &failed);
        assert_eq!(map.iter().flatten().count(), t2.num_links());

        // Routing degrades per-destination rather than failing wholesale:
        // IE is unreachable from every other node ...
        let r2 = Router::new(&t2);
        let ie2 = t2.require_node("IE").unwrap();
        for src in t2.node_ids().filter(|&n| n != ie2) {
            assert!(
                r2.path(OdPair::new(src, ie2)).is_none(),
                "{} should not reach isolated IE",
                t2.node(src).name()
            );
        }
        // ... the isolated island cannot reach out ...
        let janet2 = t2.require_node("JANET").unwrap();
        assert!(r2.path(OdPair::new(ie2, janet2)).is_none());
        // ... and every destination in the main component stays reachable.
        for dst in t2.node_ids().filter(|&n| n != ie2 && n != janet2) {
            assert!(
                r2.path(OdPair::new(janet2, dst)).is_some(),
                "JANET lost {} although it is in the surviving component",
                t2.node(dst).name()
            );
        }
    }

    #[test]
    fn link_id_map_survives_repeated_fail_restore_cycles() {
        // The serving daemon's fail_link/restore_link loop re-derives the
        // post-failure topology from scratch each time, so the translation
        // map must stay exact across arbitrarily many cycles — including
        // re-failing a fibre that was previously failed and restored.
        let t = geant();
        let fibres = [("UK", "SE"), ("FR", "LU"), ("UK", "NL"), ("FR", "LU")];
        for (cycle, (a, b)) in fibres.iter().enumerate() {
            let a = t.require_node(a).unwrap();
            let b = t.require_node(b).unwrap();
            let failed = bidirectional_pair(&t, a, b);
            assert_eq!(failed.len(), 2, "cycle {cycle}: fibre present");

            // Fail: every surviving link translates label- and
            // weight-exactly; failed links map to None.
            let t_failed = without_links(&t, &failed).unwrap();
            let map = link_id_map(&t, &failed);
            assert_eq!(map.iter().flatten().count(), t_failed.num_links());
            for lid in t.link_ids() {
                match map[lid.index()] {
                    None => assert!(failed.contains(&lid), "cycle {cycle}"),
                    Some(new_id) => {
                        assert_eq!(t_failed.link_label(new_id), t.link_label(lid));
                        assert_eq!(
                            t_failed.link(new_id).capacity_mbps(),
                            t.link(lid).capacity_mbps()
                        );
                    }
                }
            }

            // Restore: the daemon drops back to the pristine topology; the
            // no-failure map must be the identity over the original ids.
            let restored = without_links(&t, &[]).unwrap();
            assert_eq!(restored.num_links(), t.num_links(), "cycle {cycle}");
            let identity = link_id_map(&t, &[]);
            for lid in t.link_ids() {
                assert_eq!(identity[lid.index()], Some(lid), "cycle {cycle}");
                assert_eq!(restored.link_label(lid), t.link_label(lid));
            }
        }
    }

    #[test]
    fn link_id_map_composes_across_overlapping_failures() {
        // Two overlapping failure epochs (fail UK<->SE, then additionally
        // FR<->LU without restoring): composing the per-epoch maps must
        // agree with the map of the combined failure set.
        let t = geant();
        let uk = t.require_node("UK").unwrap();
        let se = t.require_node("SE").unwrap();
        let first = bidirectional_pair(&t, uk, se);
        let t1 = without_links(&t, &first).unwrap();
        let map1 = link_id_map(&t, &first);

        let fr1 = t1.require_node("FR").unwrap();
        let lu1 = t1.require_node("LU").unwrap();
        let second = bidirectional_pair(&t1, fr1, lu1);
        let t2 = without_links(&t1, &second).unwrap();
        let map2 = link_id_map(&t1, &second);

        let fr = t.require_node("FR").unwrap();
        let lu = t.require_node("LU").unwrap();
        let mut combined_failed = first.clone();
        combined_failed.extend(bidirectional_pair(&t, fr, lu));
        let combined = link_id_map(&t, &combined_failed);

        for lid in t.link_ids() {
            let composed = map1[lid.index()].and_then(|mid| map2[mid.index()]);
            assert_eq!(
                composed,
                combined[lid.index()],
                "composition mismatch for {}",
                t.link_label(lid)
            );
            if let Some(final_id) = composed {
                assert_eq!(t2.link_label(final_id), t.link_label(lid));
            }
        }
        assert_eq!(
            combined.iter().flatten().count(),
            t.num_links() - combined_failed.len()
        );
    }

    #[test]
    fn isolating_a_node_yields_unreachable_not_error() {
        let t = geant();
        let uk = t.require_node("UK").unwrap();
        let ie = t.require_node("IE").unwrap();
        // IE is single-homed to UK; cutting the fibre isolates it.
        let failed = bidirectional_pair(&t, uk, ie);
        let t2 = without_links(&t, &failed).unwrap();
        let r2 = Router::new(&t2);
        let janet2 = t2.require_node("JANET").unwrap();
        let ie2 = t2.require_node("IE").unwrap();
        assert!(r2.path(OdPair::new(janet2, ie2)).is_none());
    }
}
