//! # nws-routing — IS-IS-like shortest-path routing substrate
//!
//! The monitor-placement formulation consumes a *routing matrix* `R` whose
//! entry `r_{k,i}` says which fraction of OD pair `k`'s traffic traverses
//! link `i` (binary when shortest paths are unique, fractional under ECMP).
//! This crate computes it from an [`nws_topo::Topology`] the same way an
//! IS-IS/OSPF control plane would:
//!
//! * [`Spf`] — single-source shortest-path-first (Dijkstra) over IGP weights,
//!   retaining the full equal-cost DAG;
//! * [`Router`] — per-source SPF cache with path extraction and ECMP traffic
//!   splitting;
//! * [`RoutingMatrix`] — the dense `|F| × |E|` matrix plus link-load
//!   accumulation;
//! * [`failure`] — link-failure what-if: clone a topology without some links
//!   and recompute, modelling the re-routing events that motivate dynamic
//!   monitor placement (paper §I).
//!
//! ```
//! use nws_topo::geant;
//! use nws_routing::{OdPair, Router};
//!
//! let topo = geant();
//! let router = Router::new(&topo);
//! let uk = topo.require_node("UK").unwrap();
//! let sk = topo.require_node("SK").unwrap();
//! let path = router.path(OdPair { src: uk, dst: sk }).unwrap();
//! let labels: Vec<String> = path.links().iter().map(|&l| topo.link_label(l)).collect();
//! assert_eq!(labels, ["UK-NL", "NL-DE", "DE-CZ", "CZ-SK"]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod failure;
mod matrix;
mod path;
mod router;
mod spf;

pub use matrix::{OdLinkIndex, RoutingMatrix};
pub use path::{OdPair, Path};
pub use router::Router;
pub use spf::Spf;
