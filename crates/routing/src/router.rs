//! Per-source SPF cache with path extraction and ECMP splitting.

use crate::{OdPair, Path, Spf};
use nws_topo::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// A network-wide routing view: lazily computes and caches one [`Spf`] per
/// source node, and answers path / ECMP-split queries for OD pairs.
///
/// The `Router` borrows the topology; recompute-after-failure scenarios
/// build a new topology (see [`crate::failure`]) and a new `Router` over it,
/// mirroring how a real control plane reconverges.
pub struct Router<'t> {
    topo: &'t Topology,
    cache: std::cell::RefCell<HashMap<NodeId, std::rc::Rc<Spf>>>,
}

impl<'t> Router<'t> {
    /// Creates a router over `topo` with an empty SPF cache.
    pub fn new(topo: &'t Topology) -> Self {
        Router {
            topo,
            cache: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// The topology this router routes over.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The (cached) SPF DAG from `source`.
    pub fn spf(&self, source: NodeId) -> std::rc::Rc<Spf> {
        if let Some(spf) = self.cache.borrow().get(&source) {
            return std::rc::Rc::clone(spf);
        }
        let spf = std::rc::Rc::new(Spf::compute(self.topo, source));
        self.cache
            .borrow_mut()
            .insert(source, std::rc::Rc::clone(&spf));
        spf
    }

    /// The deterministic (lowest-link-id tie-break) shortest path for `od`;
    /// `None` if the destination is unreachable.
    pub fn path(&self, od: OdPair) -> Option<Path> {
        let spf = self.spf(od.src);
        let links = spf.path_to(self.topo, od.dst)?;
        let cost = spf.distance(od.dst)?;
        Some(Path::new(links, cost))
    }

    /// True if `od` has a single shortest path (no ECMP).
    pub fn unique_path(&self, od: OdPair) -> bool {
        self.spf(od.src).unique_path_to(self.topo, od.dst)
    }

    /// The fraction of `od`'s traffic carried by each link under even ECMP
    /// splitting (OSPF/IS-IS style: at each node, split evenly across
    /// equal-cost next hops). Returns `(link, fraction)` pairs with
    /// fractions in `(0, 1]`; unique paths yield all-1 fractions.
    ///
    /// Returns an empty vector if the destination is unreachable or
    /// `od.src == od.dst`.
    pub fn ecmp_fractions(&self, od: OdPair) -> Vec<(LinkId, f64)> {
        let spf = self.spf(od.src);
        if od.src == od.dst || spf.distance(od.dst).is_none() {
            return Vec::new();
        }
        // Walk the shortest-path DAG backwards from the destination,
        // distributing the destination's unit of traffic across incoming
        // shortest-path links. `node_share[v]` is the fraction of traffic
        // that flows *through* node v; it splits evenly over v's parents.
        //
        // Processing order: decreasing distance from the source guarantees a
        // node is finalized before its parents receive its share.
        let mut nodes: Vec<NodeId> = self
            .topo
            .node_ids()
            .filter(|&v| spf.distance(v).is_some())
            .collect();
        nodes.sort_by(|&a, &b| {
            let (da, db) = (spf.distance(a).unwrap(), spf.distance(b).unwrap());
            db.partial_cmp(&da).expect("finite distances")
        });

        let mut node_share: HashMap<NodeId, f64> = HashMap::new();
        node_share.insert(od.dst, 1.0);
        let mut link_frac: HashMap<LinkId, f64> = HashMap::new();

        for v in nodes {
            let share = match node_share.get(&v) {
                Some(&s) if s > 0.0 => s,
                _ => continue,
            };
            if v == od.src {
                continue;
            }
            let parents = spf.shortest_path_parents(v);
            debug_assert!(!parents.is_empty(), "reachable non-source node has parents");
            let per = share / parents.len() as f64;
            for &l in parents {
                *link_frac.entry(l).or_insert(0.0) += per;
                let u = self.topo.link(l).src();
                *node_share.entry(u).or_insert(0.0) += per;
            }
        }

        let mut out: Vec<(LinkId, f64)> = link_frac.into_iter().collect();
        out.sort_by_key(|&(l, _)| l);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::{geant, LinkKind, TopologyBuilder};

    #[test]
    fn path_and_cache() {
        let t = geant();
        let r = Router::new(&t);
        let uk = t.require_node("UK").unwrap();
        let lu = t.require_node("LU").unwrap();
        let p = r.path(OdPair::new(uk, lu)).unwrap();
        assert_eq!(p.cost(), 25.0);
        assert_eq!(p.describe(&t), "UK -> FR -> LU");
        // Second query hits the cache; result identical.
        let p2 = r.path(OdPair::new(uk, lu)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn unique_path_fractions_are_one() {
        let t = geant();
        let r = Router::new(&t);
        let uk = t.require_node("UK").unwrap();
        let il = t.require_node("IL").unwrap();
        let od = OdPair::new(uk, il);
        assert!(r.unique_path(od));
        let fr = r.ecmp_fractions(od);
        let p = r.path(od).unwrap();
        assert_eq!(fr.len(), p.len());
        for (l, f) in fr {
            assert!(p.traverses(l));
            assert!((f - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ecmp_splits_evenly() {
        // Equal-cost diamond: each arm carries 1/2.
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let x = b.node("X");
        let y = b.node("Y");
        let d = b.node("D");
        b.link(a, x, 100.0, 1.0, LinkKind::Backbone);
        b.link(x, d, 100.0, 1.0, LinkKind::Backbone);
        b.link(a, y, 100.0, 1.0, LinkKind::Backbone);
        b.link(y, d, 100.0, 1.0, LinkKind::Backbone);
        let t = b.build().unwrap();
        let r = Router::new(&t);
        let fr = r.ecmp_fractions(OdPair::new(a, d));
        assert_eq!(fr.len(), 4);
        for (_, f) in fr {
            assert!((f - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn ecmp_conserves_flow() {
        // Three-level graph with mixed ECMP: total out of source == 1 and
        // total into destination == 1.
        let mut b = TopologyBuilder::new();
        let s = b.node("S");
        let m1 = b.node("M1");
        let m2 = b.node("M2");
        let m3 = b.node("M3");
        let d = b.node("D");
        b.link(s, m1, 100.0, 1.0, LinkKind::Backbone);
        b.link(s, m2, 100.0, 1.0, LinkKind::Backbone);
        b.link(s, m3, 100.0, 1.0, LinkKind::Backbone);
        b.link(m1, d, 100.0, 2.0, LinkKind::Backbone);
        b.link(m2, d, 100.0, 2.0, LinkKind::Backbone);
        b.link(m3, d, 100.0, 2.0, LinkKind::Backbone);
        let t = b.build().unwrap();
        let r = Router::new(&t);
        let fr = r.ecmp_fractions(OdPair::new(s, d));
        let out_of_s: f64 = fr
            .iter()
            .filter(|(l, _)| t.link(*l).src() == s)
            .map(|&(_, f)| f)
            .sum();
        let into_d: f64 = fr
            .iter()
            .filter(|(l, _)| t.link(*l).dst() == d)
            .map(|&(_, f)| f)
            .sum();
        assert!((out_of_s - 1.0).abs() < 1e-12);
        assert!((into_d - 1.0).abs() < 1e-12);
        for (_, f) in fr {
            assert!((f - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn self_od_and_unreachable() {
        let t = geant();
        let r = Router::new(&t);
        let uk = t.require_node("UK").unwrap();
        assert!(r.ecmp_fractions(OdPair::new(uk, uk)).is_empty());
        let p = r.path(OdPair::new(uk, uk)).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn geant_all_pairs_reachable() {
        let t = geant();
        let r = Router::new(&t);
        for s in t.node_ids() {
            for d in t.node_ids() {
                assert!(
                    r.path(OdPair::new(s, d)).is_some(),
                    "{} -> {} unreachable",
                    t.node(s).name(),
                    t.node(d).name()
                );
            }
        }
    }
}
