//! The routing matrix `R` and link-load accumulation.

use crate::{OdPair, Router};
use nws_topo::{LinkId, Topology};

/// The routing matrix of a measurement task: `entry(k, i)` is the fraction of
/// OD pair `k`'s traffic that traverses link `i` (paper §III: `r_{k,i} = 1`
/// if OD pair `i` traverses edge `j`, generalized to fractions under ECMP).
///
/// Stored dense (`|F| × |E|`): the task sets in this problem are tens of OD
/// pairs over at most a few hundred links.
#[derive(Debug, Clone)]
pub struct RoutingMatrix {
    ods: Vec<OdPair>,
    num_links: usize,
    /// Row-major `|F| × |E|` fractions.
    entries: Vec<f64>,
}

impl RoutingMatrix {
    /// Builds the routing matrix for `ods` over `topo` using shortest-path
    /// routing with even ECMP splitting.
    pub fn build(topo: &Topology, ods: &[OdPair]) -> RoutingMatrix {
        let router = Router::new(topo);
        Self::build_with_router(&router, ods)
    }

    /// Builds the routing matrix reusing an existing router's SPF cache.
    pub fn build_with_router(router: &Router<'_>, ods: &[OdPair]) -> RoutingMatrix {
        let num_links = router.topology().num_links();
        let mut entries = vec![0.0; ods.len() * num_links];
        for (k, &od) in ods.iter().enumerate() {
            for (l, f) in router.ecmp_fractions(od) {
                entries[k * num_links + l.index()] = f;
            }
        }
        RoutingMatrix {
            ods: ods.to_vec(),
            num_links,
            entries,
        }
    }

    /// Number of OD pairs (rows).
    pub fn num_ods(&self) -> usize {
        self.ods.len()
    }

    /// Number of links (columns).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// The OD pairs, in row order.
    pub fn ods(&self) -> &[OdPair] {
        &self.ods
    }

    /// Fraction of OD `k`'s traffic on `link`.
    ///
    /// # Panics
    /// Panics if `k` or `link` is out of range.
    pub fn entry(&self, k: usize, link: LinkId) -> f64 {
        assert!(k < self.ods.len(), "OD index {k} out of range");
        self.entries[k * self.num_links + link.index()]
    }

    /// True if OD `k` sends any traffic over `link`.
    pub fn traverses(&self, k: usize, link: LinkId) -> bool {
        self.entry(k, link) > 0.0
    }

    /// Links traversed by OD `k` (positive fraction), in link-id order.
    pub fn links_of_od(&self, k: usize) -> Vec<LinkId> {
        (0..self.num_links)
            .map(LinkId::from_index)
            .filter(|&l| self.traverses(k, l))
            .collect()
    }

    /// OD rows that traverse `link`.
    pub fn ods_on_link(&self, link: LinkId) -> Vec<usize> {
        (0..self.ods.len())
            .filter(|&k| self.traverses(k, link))
            .collect()
    }

    /// Builds the inverted link→OD index of this matrix. The index is a
    /// point-in-time snapshot; rebuild it after rerouting produces a new
    /// matrix.
    pub fn link_index(&self) -> OdLinkIndex {
        OdLinkIndex::build(self)
    }

    /// The union of links traversed by any OD pair — the candidate monitor
    /// set `L ⊆ E` of the paper.
    pub fn covered_links(&self) -> Vec<LinkId> {
        (0..self.num_links)
            .map(LinkId::from_index)
            .filter(|&l| (0..self.ods.len()).any(|k| self.traverses(k, l)))
            .collect()
    }

    /// Accumulates per-link loads from per-OD demands: `U = Rᵀ·d`.
    ///
    /// `demands[k]` is OD `k`'s traffic volume (any unit); the result is the
    /// volume each link carries from these ODs, in the same unit.
    ///
    /// # Panics
    /// Panics if `demands.len() != self.num_ods()`.
    pub fn link_loads(&self, demands: &[f64]) -> Vec<f64> {
        assert_eq!(
            demands.len(),
            self.ods.len(),
            "demand vector length mismatch"
        );
        let mut loads = vec![0.0; self.num_links];
        for (k, &d) in demands.iter().enumerate() {
            let row = &self.entries[k * self.num_links..(k + 1) * self.num_links];
            for (i, &f) in row.iter().enumerate() {
                if f > 0.0 {
                    loads[i] += f * d;
                }
            }
        }
        loads
    }
}

/// Inverted index of a [`RoutingMatrix`]: for every link, the OD rows that
/// traverse it and with what fraction — the transpose of `R` in CSR
/// (compressed sparse row) form, rows indexed by link.
///
/// [`RoutingMatrix::ods_on_link`] answers the same question by scanning a
/// dense column (`O(|F|)` per query); this index answers it in `O(1)` plus
/// the output size, which is what incremental evaluation and per-link
/// sensitivity analyses need when they touch every link once per sweep.
#[derive(Debug, Clone)]
pub struct OdLinkIndex {
    /// `offsets[i]..offsets[i + 1]` spans link `i`'s entries; length
    /// `num_links + 1`.
    offsets: Vec<usize>,
    /// `(od_row, fraction)` pairs, grouped by link, OD rows ascending within
    /// each group.
    entries: Vec<(usize, f64)>,
}

impl OdLinkIndex {
    /// Builds the index by a counting-sort transpose of the dense matrix
    /// (one pass to size the groups, one to fill them).
    pub fn build(matrix: &RoutingMatrix) -> OdLinkIndex {
        let num_links = matrix.num_links();
        let mut counts = vec![0usize; num_links];
        for k in 0..matrix.num_ods() {
            let row = &matrix.entries[k * num_links..(k + 1) * num_links];
            for (i, &f) in row.iter().enumerate() {
                if f > 0.0 {
                    counts[i] += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(num_links + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut entries = vec![(0usize, 0.0f64); acc];
        let mut cursor = offsets[..num_links].to_vec();
        for k in 0..matrix.num_ods() {
            let row = &matrix.entries[k * num_links..(k + 1) * num_links];
            for (i, &f) in row.iter().enumerate() {
                if f > 0.0 {
                    entries[cursor[i]] = (k, f);
                    cursor[i] += 1;
                }
            }
        }
        OdLinkIndex { offsets, entries }
    }

    /// Number of links (rows of the index).
    pub fn num_links(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored `(od, fraction)` entries across all links.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The `(od_row, fraction)` pairs of ODs traversing `link`, OD rows
    /// ascending.
    ///
    /// # Panics
    /// Panics if `link` is out of range.
    pub fn ods_on_link(&self, link: LinkId) -> &[(usize, f64)] {
        let i = link.index();
        assert!(i < self.num_links(), "link index {i} out of range");
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::geant;

    fn janet_ods(topo: &Topology) -> Vec<OdPair> {
        let janet = topo.require_node("JANET").unwrap();
        ["NL", "LU", "SK", "PL"]
            .iter()
            .map(|d| OdPair::new(janet, topo.require_node(d).unwrap()))
            .collect()
    }

    #[test]
    fn build_and_entries() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        assert_eq!(r.num_ods(), 4);
        assert_eq!(r.num_links(), t.num_links());

        // JANET->NL traverses access link + UK-NL.
        let uk = t.require_node("UK").unwrap();
        let nl = t.require_node("NL").unwrap();
        let uk_nl = t.link_between(uk, nl).unwrap();
        assert!(r.traverses(0, uk_nl));
        assert_eq!(r.entry(0, uk_nl), 1.0);

        // JANET->LU goes via FR, not NL.
        let fr = t.require_node("FR").unwrap();
        let lu = t.require_node("LU").unwrap();
        let fr_lu = t.link_between(fr, lu).unwrap();
        assert!(r.traverses(1, fr_lu));
        assert!(!r.traverses(1, uk_nl));
    }

    #[test]
    fn links_of_od_ordered_set() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        // JANET->SK: JANET-UK, UK-NL, NL-DE, DE-CZ, CZ-SK = 5 links.
        let links = r.links_of_od(2);
        assert_eq!(links.len(), 5);
        let labels: Vec<String> = links.iter().map(|&l| t.link_label(l)).collect();
        assert!(labels.contains(&"CZ-SK".to_string()));
        assert!(labels.contains(&"JANET-UK".to_string()));
    }

    #[test]
    fn ods_on_link_inverse_of_links_of_od() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        for k in 0..r.num_ods() {
            for l in r.links_of_od(k) {
                assert!(r.ods_on_link(l).contains(&k));
            }
        }
    }

    #[test]
    fn covered_links_union() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        let covered = r.covered_links();
        // JANET-UK + UK-NL (NL) + UK-FR,FR-LU (LU) + NL-DE,DE-CZ,CZ-SK (SK)
        // + UK-SE,SE-PL (PL) = 9 links.
        assert_eq!(covered.len(), 9);
    }

    #[test]
    fn link_loads_accumulate() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        let demands = [30000.0, 20.0, 22.0, 1500.0];
        let loads = r.link_loads(&demands);
        // The access link carries everything.
        let access = nws_topo::janet_access_link(&t);
        assert!((loads[access.index()] - demands.iter().sum::<f64>()).abs() < 1e-9);
        // UK-NL carries NL + SK traffic (SK routed via NL-DE).
        let uk = t.require_node("UK").unwrap();
        let nl = t.require_node("NL").unwrap();
        let uk_nl = t.link_between(uk, nl).unwrap();
        assert!((loads[uk_nl.index()] - (30000.0 + 22.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "demand vector length mismatch")]
    fn wrong_demand_length_panics() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        let _ = r.link_loads(&[1.0, 2.0]);
    }

    #[test]
    fn link_index_matches_dense_queries() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        let idx = r.link_index();
        assert_eq!(idx.num_links(), r.num_links());
        for l in (0..r.num_links()).map(LinkId::from_index) {
            let inverted: Vec<usize> = idx.ods_on_link(l).iter().map(|&(k, _)| k).collect();
            assert_eq!(inverted, r.ods_on_link(l), "link {l:?}");
            for &(k, f) in idx.ods_on_link(l) {
                assert_eq!(f, r.entry(k, l), "od {k} link {l:?}");
            }
        }
    }

    #[test]
    fn link_index_nnz_counts_traversals() {
        let t = geant();
        let ods = janet_ods(&t);
        let r = RoutingMatrix::build(&t, &ods);
        let expected: usize = (0..r.num_ods()).map(|k| r.links_of_od(k).len()).sum();
        assert_eq!(r.link_index().nnz(), expected);
    }

    #[test]
    fn link_index_of_empty_matrix() {
        let t = geant();
        let r = RoutingMatrix::build(&t, &[]);
        let idx = r.link_index();
        assert_eq!(idx.nnz(), 0);
        assert_eq!(idx.num_links(), t.num_links());
        assert!(idx.ods_on_link(LinkId::from_index(0)).is_empty());
    }

    #[test]
    fn empty_od_set() {
        let t = geant();
        let r = RoutingMatrix::build(&t, &[]);
        assert_eq!(r.num_ods(), 0);
        assert!(r.covered_links().is_empty());
        assert_eq!(r.link_loads(&[]).len(), t.num_links());
    }
}
