//! Single-source shortest-path-first computation (Dijkstra) over IGP weights.

use nws_topo::{LinkId, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; distances are finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Relative tolerance when deciding that two path costs are "equal" for ECMP
/// purposes. IGP metrics are small integers in practice, so exact comparison
/// would usually do; the tolerance guards against accumulated float error on
/// long paths with fractional weights.
const ECMP_TOL: f64 = 1e-9;

/// The shortest-path-first tree (more precisely, DAG) from one source node.
///
/// Retains, for every destination, the distance and *all* incoming links
/// that lie on some shortest path — the information an IS-IS router holds
/// after SPF, sufficient for unique-path extraction and ECMP splitting.
#[derive(Debug, Clone)]
pub struct Spf {
    source: NodeId,
    dist: Vec<f64>,
    /// For each node, incoming links on shortest paths, sorted by link id for
    /// deterministic tie-breaks.
    parents: Vec<Vec<LinkId>>,
}

impl Spf {
    /// Runs Dijkstra from `source` over the topology's IGP weights.
    pub fn compute(topo: &Topology, source: NodeId) -> Spf {
        let n = topo.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut parents: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();

        dist[source.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source.index(),
        });

        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if settled[u] {
                continue;
            }
            settled[u] = true;
            let node = NodeId::from_index(u);
            for l in topo.out_links(node) {
                let link = topo.link(l);
                let v = link.dst().index();
                let nd = d + link.igp_weight();
                if nd < dist[v] - ECMP_TOL {
                    dist[v] = nd;
                    parents[v].clear();
                    parents[v].push(l);
                    heap.push(HeapEntry { dist: nd, node: v });
                } else if (nd - dist[v]).abs() <= ECMP_TOL {
                    // Equal-cost alternative; record it for the ECMP DAG.
                    if !parents[v].contains(&l) {
                        parents[v].push(l);
                    }
                }
            }
        }
        for p in &mut parents {
            p.sort();
        }
        Spf {
            source,
            dist,
            parents,
        }
    }

    /// The source node this SPF was computed from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node`; `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// All incoming links of `node` that lie on a shortest path from the
    /// source (empty for the source itself and for unreachable nodes).
    pub fn shortest_path_parents(&self, node: NodeId) -> &[LinkId] {
        &self.parents[node.index()]
    }

    /// True if the shortest path from the source to `node` is unique
    /// (no equal-cost alternatives anywhere along the way).
    pub fn unique_path_to(&self, topo: &Topology, node: NodeId) -> bool {
        if self.distance(node).is_none() {
            return false;
        }
        let mut cur = node;
        while cur != self.source {
            let ps = self.shortest_path_parents(cur);
            if ps.len() != 1 {
                return false;
            }
            cur = topo.link(ps[0]).src();
        }
        true
    }

    /// Extracts the lowest-link-id shortest path from the source to `node`.
    /// Returns the link sequence source→node; `None` if unreachable.
    pub fn path_to(&self, topo: &Topology, node: NodeId) -> Option<Vec<LinkId>> {
        self.distance(node)?;
        let mut rev = Vec::new();
        let mut cur = node;
        while cur != self.source {
            // Deterministic tie-break: parents are sorted by link id.
            let l = *self.parents[cur.index()].first()?;
            rev.push(l);
            cur = topo.link(l).src();
        }
        rev.reverse();
        Some(rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::{LinkKind, TopologyBuilder};

    /// Diamond with unequal arms: A->B->D costs 2, A->C->D costs 3.
    fn diamond_unequal() -> (Topology, [NodeId; 4]) {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        b.link(a, bb, 100.0, 1.0, LinkKind::Backbone);
        b.link(bb, d, 100.0, 1.0, LinkKind::Backbone);
        b.link(a, c, 100.0, 1.0, LinkKind::Backbone);
        b.link(c, d, 100.0, 2.0, LinkKind::Backbone);
        (b.build().unwrap(), [a, bb, c, d])
    }

    /// Diamond with equal arms (ECMP): both A->B->D and A->C->D cost 2.
    fn diamond_equal() -> (Topology, [NodeId; 4]) {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        b.link(a, bb, 100.0, 1.0, LinkKind::Backbone);
        b.link(bb, d, 100.0, 1.0, LinkKind::Backbone);
        b.link(a, c, 100.0, 1.0, LinkKind::Backbone);
        b.link(c, d, 100.0, 1.0, LinkKind::Backbone);
        (b.build().unwrap(), [a, bb, c, d])
    }

    use nws_topo::Topology;

    #[test]
    fn distances_and_unique_path() {
        let (t, [a, bb, c, d]) = diamond_unequal();
        let spf = Spf::compute(&t, a);
        assert_eq!(spf.distance(a), Some(0.0));
        assert_eq!(spf.distance(bb), Some(1.0));
        assert_eq!(spf.distance(c), Some(1.0));
        assert_eq!(spf.distance(d), Some(2.0));
        assert!(spf.unique_path_to(&t, d));
        let p = spf.path_to(&t, d).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(t.link(p[0]).dst(), bb);
    }

    #[test]
    fn ecmp_detected() {
        let (t, [a, _, _, d]) = diamond_equal();
        let spf = Spf::compute(&t, a);
        assert_eq!(spf.shortest_path_parents(d).len(), 2);
        assert!(!spf.unique_path_to(&t, d));
        // path_to still returns a deterministic representative.
        let p = spf.path_to(&t, d).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unreachable_nodes() {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let z = b.node("Z");
        let w = b.node("W");
        b.link(a, z, 100.0, 1.0, LinkKind::Backbone); // w has no incoming links
        b.link(w, a, 100.0, 1.0, LinkKind::Backbone);
        let t = b.build().unwrap();
        let spf = Spf::compute(&t, a);
        assert_eq!(spf.distance(w), None);
        assert!(spf.path_to(&t, w).is_none());
        assert!(!spf.unique_path_to(&t, w));
        assert_eq!(spf.distance(z), Some(1.0));
    }

    #[test]
    fn source_path_is_empty() {
        let (t, [a, ..]) = diamond_unequal();
        let spf = Spf::compute(&t, a);
        assert_eq!(spf.path_to(&t, a), Some(vec![]));
        assert!(spf.unique_path_to(&t, a));
    }

    #[test]
    fn respects_weights_not_hop_count() {
        // A->B direct cost 10, A->C->B cost 2+3 = 5: longer hop path wins.
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        b.link(a, bb, 100.0, 10.0, LinkKind::Backbone);
        b.link(a, c, 100.0, 2.0, LinkKind::Backbone);
        b.link(c, bb, 100.0, 3.0, LinkKind::Backbone);
        let t = b.build().unwrap();
        let spf = Spf::compute(&t, a);
        assert_eq!(spf.distance(bb), Some(5.0));
        assert_eq!(spf.path_to(&t, bb).unwrap().len(), 2);
    }

    #[test]
    fn geant_uk_paths_match_design() {
        let t = nws_topo::geant();
        let uk = t.require_node("UK").unwrap();
        let spf = Spf::compute(&t, uk);
        let expect = [
            ("FR", 5.0),
            ("NL", 5.0),
            ("NY", 5.0),
            ("SE", 10.0),
            ("PT", 10.0),
            ("CH", 10.0),
            ("DE", 10.0),
            ("BE", 15.0),
            ("ES", 15.0),
            ("AT", 20.0),
            ("CZ", 20.0),
            ("PL", 20.0),
            ("IT", 20.0),
            ("IE", 20.0),
            ("LU", 25.0),
            ("SK", 35.0),
            ("HU", 35.0),
            ("SI", 35.0),
            ("GR", 40.0),
            ("IL", 45.0),
            ("HR", 45.0),
        ];
        for (name, d) in expect {
            let n = t.require_node(name).unwrap();
            assert_eq!(spf.distance(n), Some(d), "distance UK->{name}");
            assert!(spf.unique_path_to(&t, n), "UK->{name} should be ECMP-free");
        }
    }
}
