//! Property-based tests: SPF against a Bellman–Ford oracle, ECMP flow
//! conservation, and routing-matrix invariants on random topologies.

use nws_routing::{OdPair, Router, RoutingMatrix, Spf};
use nws_topo::random::{gabriel_like, ring_with_chords};
use nws_topo::{NodeId, Topology};
use proptest::prelude::*;

/// Independent oracle: Bellman–Ford distances from `src`.
fn bellman_ford(topo: &Topology, src: NodeId) -> Vec<f64> {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[src.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for l in topo.link_ids() {
            let link = topo.link(l);
            let (u, v) = (link.src().index(), link.dst().index());
            let cand = dist[u] + link.igp_weight();
            if cand < dist[v] - 1e-12 {
                dist[v] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

fn random_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (4usize..20, 0usize..12, any::<u64>())
            .prop_map(|(n, chords, seed)| ring_with_chords(n, chords, seed)),
        (4usize..16, any::<u64>()).prop_map(|(n, seed)| gabriel_like(n, 0.35, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spf_matches_bellman_ford(topo in random_topology(), src_raw in 0usize..32) {
        let src = NodeId::from_index(src_raw % topo.num_nodes());
        let spf = Spf::compute(&topo, src);
        let oracle = bellman_ford(&topo, src);
        for v in topo.node_ids() {
            match spf.distance(v) {
                Some(d) => prop_assert!(
                    (d - oracle[v.index()]).abs() < 1e-9,
                    "node {}: spf {d} vs bf {}",
                    topo.node(v).name(),
                    oracle[v.index()]
                ),
                None => prop_assert!(oracle[v.index()].is_infinite()),
            }
        }
    }

    #[test]
    fn extracted_paths_have_matching_cost(topo in random_topology(), seed in any::<u64>()) {
        let src = NodeId::from_index((seed as usize) % topo.num_nodes());
        let router = Router::new(&topo);
        let spf = router.spf(src);
        for dst in topo.node_ids() {
            if let Some(path) = router.path(OdPair::new(src, dst)) {
                // Links are contiguous src -> dst and costs telescope.
                let mut cur = src;
                let mut cost = 0.0;
                for &l in path.links() {
                    prop_assert_eq!(topo.link(l).src(), cur);
                    cur = topo.link(l).dst();
                    cost += topo.link(l).igp_weight();
                }
                prop_assert_eq!(cur, dst);
                prop_assert!((cost - path.cost()).abs() < 1e-9);
                prop_assert!((cost - spf.distance(dst).unwrap()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ecmp_fractions_conserve_unit_flow(topo in random_topology(), seed in any::<u64>()) {
        let n = topo.num_nodes();
        let src = NodeId::from_index((seed as usize) % n);
        let dst = NodeId::from_index(((seed / 7) as usize) % n);
        prop_assume!(src != dst);
        let router = Router::new(&topo);
        let fracs = router.ecmp_fractions(OdPair::new(src, dst));
        prop_assume!(!fracs.is_empty());
        // Net flow: +1 out of src, +1 into dst, conservation elsewhere.
        let mut net = vec![0.0; n];
        for (l, f) in &fracs {
            prop_assert!(*f > 0.0 && *f <= 1.0 + 1e-12);
            net[topo.link(*l).src().index()] += f;
            net[topo.link(*l).dst().index()] -= f;
        }
        for (v, &flow) in net.iter().enumerate() {
            let expect = if v == src.index() {
                1.0
            } else if v == dst.index() {
                -1.0
            } else {
                0.0
            };
            prop_assert!(
                (flow - expect).abs() < 1e-9,
                "node {v}: net {flow} expect {expect}"
            );
        }
    }

    #[test]
    fn routing_matrix_rows_match_ecmp(topo in random_topology(), seed in any::<u64>()) {
        let n = topo.num_nodes();
        let src = NodeId::from_index((seed as usize) % n);
        let ods: Vec<OdPair> = topo
            .node_ids()
            .filter(|&d| d != src)
            .take(5)
            .map(|d| OdPair::new(src, d))
            .collect();
        prop_assume!(!ods.is_empty());
        let rm = RoutingMatrix::build(&topo, &ods);
        let router = Router::new(&topo);
        for (k, &od) in ods.iter().enumerate() {
            let fracs = router.ecmp_fractions(od);
            let row_links = rm.links_of_od(k);
            prop_assert_eq!(fracs.len(), row_links.len());
            for (l, f) in fracs {
                prop_assert!((rm.entry(k, l) - f).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn link_loads_match_manual_accumulation(topo in random_topology(), seed in any::<u64>()) {
        let n = topo.num_nodes();
        let src = NodeId::from_index((seed as usize) % n);
        let ods: Vec<OdPair> = topo
            .node_ids()
            .filter(|&d| d != src)
            .map(|d| OdPair::new(src, d))
            .collect();
        let demands: Vec<f64> =
            (0..ods.len()).map(|i| 100.0 + (i as f64) * 13.0).collect();
        let rm = RoutingMatrix::build(&topo, &ods);
        let loads = rm.link_loads(&demands);
        for l in topo.link_ids() {
            let manual: f64 = (0..ods.len())
                .map(|k| rm.entry(k, l) * demands[k])
                .sum();
            prop_assert!((loads[l.index()] - manual).abs() < 1e-9);
        }
    }
}
