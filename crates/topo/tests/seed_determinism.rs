//! Seed determinism of the random topology generators: the same seed must
//! produce a byte-identical graph on every run, and the result must not
//! depend on how many solver threads the process is configured with —
//! generation draws from one seeded `StdRng` and never touches a pool.
//! (Style mirrors `nws-core`'s pool determinism tests: compare a serial
//! reference byte-for-byte against re-runs under varied configs.)

use nws_core::{solve_placement, MeasurementTask, PlacementConfig};
use nws_routing::OdPair;
use nws_topo::random::{gabriel_like, ring_with_chords};
use nws_topo::{format, Topology};

/// Canonical byte form of a topology (the plain-text file format).
fn bytes(t: &Topology) -> String {
    format::to_text(t)
}

#[test]
fn same_seed_same_graph_across_runs() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let a = ring_with_chords(12, 6, seed);
        let b = ring_with_chords(12, 6, seed);
        assert_eq!(bytes(&a), bytes(&b), "ring seed {seed}");

        let a = gabriel_like(16, 0.35, seed);
        let b = gabriel_like(16, 0.35, seed);
        assert_eq!(bytes(&a), bytes(&b), "gabriel seed {seed}");
    }
    // And different seeds really do differ (the RNG is wired through).
    assert_ne!(
        bytes(&ring_with_chords(12, 6, 1)),
        bytes(&ring_with_chords(12, 6, 2))
    );
    assert_ne!(
        bytes(&gabriel_like(16, 0.35, 1)),
        bytes(&gabriel_like(16, 0.35, 2))
    );
}

#[test]
fn generated_graph_unaffected_by_thread_config() {
    // Generation itself must be identical whatever `--threads` resolves
    // to, and a placement solved on the generated graph must agree across
    // thread counts (the eval pool guarantees a deterministic reduction
    // order, so threading cannot leak into the result).
    let reference = bytes(&ring_with_chords(10, 4, 7));
    let mut objectives: Vec<f64> = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut config = PlacementConfig::default();
        config.parallel.threads = threads;

        let topo = ring_with_chords(10, 4, 7);
        assert_eq!(bytes(&topo), reference, "threads={threads}");

        let node = |name: &str| {
            topo.node_ids()
                .find(|&n| topo.node(n).name() == name)
                .expect("generated ring is missing expected PoPs")
        };
        let task = MeasurementTask::builder(topo.clone())
            .track("P00-P05", OdPair::new(node("P00"), node("P05")), 5_000.0)
            .theta(1_000.0)
            .build()
            .expect("task builds on the generated graph");
        let sol = solve_placement(&task, &config).expect("solvable");
        objectives.push(sol.objective);
    }
    for w in objectives.windows(2) {
        assert!(
            (w[0] - w[1]).abs() <= 1e-9 * w[0].abs().max(1.0),
            "objective drifts across thread counts: {objectives:?}"
        );
    }
}
