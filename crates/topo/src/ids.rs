//! Typed indices for nodes and links.
//!
//! Nodes and links are referred to by small dense indices throughout the
//! workspace (routing matrices, load vectors, sampling-rate vectors are all
//! indexed by [`LinkId`]). Newtypes prevent accidentally using one where the
//! other is expected.

use std::fmt;

/// Dense index of a node within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Dense index of a unidirectional link within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) u32);

impl NodeId {
    /// The raw dense index, suitable for indexing parallel arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index.
    ///
    /// Only meaningful for indices previously obtained from a topology with
    /// at least `raw + 1` nodes; passing arbitrary values produces an id that
    /// will panic when used against that topology.
    pub fn from_index(raw: usize) -> Self {
        NodeId(raw as u32)
    }
}

impl LinkId {
    /// The raw dense index, suitable for indexing parallel arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `LinkId` from a raw index (see [`NodeId::from_index`]).
    pub fn from_index(raw: usize) -> Self {
        LinkId(raw as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(LinkId::from_index(42).index(), 42);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(LinkId::from_index(3).to_string(), "e3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(LinkId::from_index(0) < LinkId::from_index(10));
    }
}
