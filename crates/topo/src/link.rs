//! Unidirectional link model.

use crate::NodeId;

/// Classification of a link, used to scope which links may host monitors.
///
/// The paper's evaluation (§V-C) deliberately excludes customer *access*
/// links from the monitorable set: CPE routers are often owned by the
/// connectivity provider, not the backbone operator running the measurement
/// task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// An intra-backbone link; eligible to host a sampling monitor.
    Backbone,
    /// A customer/peer access link; carries traffic but is not monitorable.
    Access,
}

impl LinkKind {
    /// Whether a monitor may be activated on links of this kind.
    pub fn monitorable(self) -> bool {
        matches!(self, LinkKind::Backbone)
    }
}

/// A unidirectional network link.
///
/// Real backbone links are bidirectional fibre pairs, but traffic,
/// monitoring, and routing are all per-direction concerns, so the topology
/// stores each direction as a separate [`Link`] (the paper likewise counts
/// GEANT as 72 *unidirectional* links). [`crate::TopologyBuilder::bidirectional`]
/// creates both directions at once.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    src: NodeId,
    dst: NodeId,
    capacity_mbps: f64,
    igp_weight: f64,
    kind: LinkKind,
}

impl Link {
    /// Creates a link from `src` to `dst`.
    ///
    /// `capacity_mbps` is the line rate (e.g. 155 for OC-3, 2488 for OC-48);
    /// `igp_weight` is the IS-IS/OSPF metric used by shortest-path routing.
    ///
    /// # Panics
    /// Panics if the capacity or weight is not strictly positive and finite,
    /// or if `src == dst` (self-loops are meaningless in a backbone).
    pub fn new(
        src: NodeId,
        dst: NodeId,
        capacity_mbps: f64,
        igp_weight: f64,
        kind: LinkKind,
    ) -> Self {
        assert!(src != dst, "self-loop link at {src}");
        assert!(
            capacity_mbps.is_finite() && capacity_mbps > 0.0,
            "capacity must be positive and finite, got {capacity_mbps}"
        );
        assert!(
            igp_weight.is_finite() && igp_weight > 0.0,
            "IGP weight must be positive and finite, got {igp_weight}"
        );
        Link {
            src,
            dst,
            capacity_mbps,
            igp_weight,
            kind,
        }
    }

    /// Source node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Line rate in Mbit/s.
    pub fn capacity_mbps(&self) -> f64 {
        self.capacity_mbps
    }

    /// IGP (IS-IS/OSPF) metric of this link.
    pub fn igp_weight(&self) -> f64 {
        self.igp_weight
    }

    /// Link classification.
    pub fn kind(&self) -> LinkKind {
        self.kind
    }

    /// Whether a monitor may be activated on this link.
    pub fn monitorable(&self) -> bool {
        self.kind.monitorable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn link_accessors() {
        let l = Link::new(n(0), n(1), 2488.0, 10.0, LinkKind::Backbone);
        assert_eq!(l.src(), n(0));
        assert_eq!(l.dst(), n(1));
        assert_eq!(l.capacity_mbps(), 2488.0);
        assert_eq!(l.igp_weight(), 10.0);
        assert!(l.monitorable());
    }

    #[test]
    fn access_links_not_monitorable() {
        let l = Link::new(n(0), n(1), 155.0, 1.0, LinkKind::Access);
        assert!(!l.monitorable());
        assert!(!LinkKind::Access.monitorable());
        assert!(LinkKind::Backbone.monitorable());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Link::new(n(3), n(3), 155.0, 1.0, LinkKind::Backbone);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn non_positive_capacity_rejected() {
        let _ = Link::new(n(0), n(1), 0.0, 1.0, LinkKind::Backbone);
    }

    #[test]
    #[should_panic(expected = "IGP weight must be positive")]
    fn nan_weight_rejected() {
        let _ = Link::new(n(0), n(1), 155.0, f64::NAN, LinkKind::Backbone);
    }
}
