//! # nws-topo — network topology substrate
//!
//! A directed-multigraph model of an IP backbone, shaped after the needs of
//! the monitor-placement problem from Cantieni et al. (CoNEXT 2006):
//!
//! * [`Topology`] — PoP nodes and unidirectional capacitated links with IGP
//!   weights, constant-time adjacency queries, and name-based lookup.
//! * [`TopologyBuilder`] — fluent construction, including bidirectional link
//!   pairs as found in real backbones.
//! * [`geant`] — a GEANT-2004-like reference backbone (22 PoPs + one external
//!   customer node, 72 unidirectional backbone links) used throughout the
//!   paper reproduction.
//! * [`abilene`] — the Abilene/Internet2 backbone (11 PoPs, 28 unidirectional
//!   links), a second network for generality experiments.
//! * [`random`] — random topology generators for stress and convergence
//!   experiments.
//! * [`format`](mod@format) — a small plain-text serialization format (no external
//!   serialization crates required).
//!
//! Links carry a [`LinkKind`] so that customer *access* links (which the
//! paper excludes from the monitorable set, §V-C) can be distinguished from
//! *backbone* links.
//!
//! ```
//! use nws_topo::{LinkKind, TopologyBuilder};
//!
//! let mut b = TopologyBuilder::new();
//! let a = b.node("A");
//! let z = b.node("Z");
//! b.bidirectional(a, z, 2_500.0, 10.0, LinkKind::Backbone);
//! let topo = b.build().unwrap();
//! assert_eq!(topo.num_links(), 2);
//! assert_eq!(topo.out_links(a).count(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod abilene;
mod builder;
mod error;
pub mod format;
mod geant;
mod graph;
mod ids;
mod link;
mod node;
pub mod random;

pub use abilene::{abilene, abilene_access_link, ABILENE_CUSTOMER, ABILENE_POPS};
pub use builder::TopologyBuilder;
pub use error::TopologyError;
pub use geant::{geant, janet_access_link, GeantPop, JANET_NODE};
pub use graph::Topology;
pub use ids::{LinkId, NodeId};
pub use link::{Link, LinkKind};
pub use node::Node;

/// Convenience result alias for topology operations.
pub type Result<T> = std::result::Result<T, TopologyError>;
