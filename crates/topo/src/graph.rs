//! The immutable topology graph.

use crate::{Link, LinkId, Node, NodeId, Result, TopologyError};
use std::collections::HashMap;

/// An immutable directed multigraph of PoP nodes and unidirectional links.
///
/// Built via [`crate::TopologyBuilder`]; once built, a `Topology` is
/// immutable and cheap to share. Adjacency (outgoing / incoming link lists)
/// is precomputed, and nodes can be looked up by name.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_name: HashMap<String, NodeId>,
    out_adj: Vec<Vec<LinkId>>,
    in_adj: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Assembles a topology from parts. Used by the builder; validates name
    /// uniqueness and link endpoints.
    pub(crate) fn assemble(nodes: Vec<Node>, links: Vec<Link>) -> Result<Topology> {
        if nodes.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut by_name = HashMap::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            if by_name
                .insert(n.name().to_string(), NodeId(i as u32))
                .is_some()
            {
                return Err(TopologyError::DuplicateNodeName(n.name().to_string()));
            }
        }
        let mut out_adj = vec![Vec::new(); nodes.len()];
        let mut in_adj = vec![Vec::new(); nodes.len()];
        let mut seen_pairs = HashMap::new();
        for (i, l) in links.iter().enumerate() {
            let id = LinkId(i as u32);
            if seen_pairs.insert((l.src(), l.dst()), id).is_some() {
                return Err(TopologyError::DuplicateLink {
                    src: nodes[l.src().index()].name().to_string(),
                    dst: nodes[l.dst().index()].name().to_string(),
                });
            }
            out_adj[l.src().index()].push(id);
            in_adj[l.dst().index()].push(id);
        }
        Ok(Topology {
            nodes,
            links,
            by_name,
            out_adj,
            in_adj,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Node metadata by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids from a different topology).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link metadata by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids from a different topology).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Topology::node_by_name`] but returns a typed error; convenient
    /// in parsing and task-definition code.
    pub fn require_node(&self, name: &str) -> Result<NodeId> {
        self.node_by_name(name)
            .ok_or_else(|| TopologyError::UnknownNode(name.to_string()))
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(|i| LinkId(i as u32))
    }

    /// Outgoing links of `node`.
    pub fn out_links(&self, node: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        self.out_adj[node.index()].iter().copied()
    }

    /// Incoming links of `node`.
    pub fn in_links(&self, node: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        self.in_adj[node.index()].iter().copied()
    }

    /// Finds the link from `src` to `dst` if one exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|&l| self.links[l.index()].dst() == dst)
    }

    /// Human-readable `"SRC-DST"` label of a link (e.g. `"UK-FR"`).
    pub fn link_label(&self, id: LinkId) -> String {
        let l = self.link(id);
        format!(
            "{}-{}",
            self.node(l.src()).name(),
            self.node(l.dst()).name()
        )
    }

    /// Ids of all monitorable (backbone) links.
    pub fn monitorable_links(&self) -> Vec<LinkId> {
        self.link_ids()
            .filter(|&l| self.link(l).monitorable())
            .collect()
    }

    /// Checks weak connectivity (every node reachable from node 0 when link
    /// direction is ignored).
    ///
    /// # Errors
    /// [`TopologyError::Disconnected`] naming an unreachable node.
    pub fn validate_connected(&self) -> Result<()> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            let node = NodeId(u as u32);
            for l in self.out_links(node) {
                let v = self.link(l).dst().index();
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
            for l in self.in_links(node) {
                let v = self.link(l).src().index();
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        match seen.iter().position(|&s| !s) {
            None => Ok(()),
            Some(i) => Err(TopologyError::Disconnected(
                self.nodes[i].name().to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkKind, TopologyBuilder};

    fn line_topology() -> Topology {
        // A -> B -> C with reverse links.
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        b.bidirectional(a, bb, 1000.0, 1.0, LinkKind::Backbone);
        b.bidirectional(bb, c, 1000.0, 1.0, LinkKind::Backbone);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let t = line_topology();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 4);
        let b = t.node_by_name("B").unwrap();
        assert_eq!(t.node(b).name(), "B");
        assert!(t.node_by_name("Z").is_none());
        assert!(matches!(
            t.require_node("Z"),
            Err(TopologyError::UnknownNode(_))
        ));
    }

    #[test]
    fn adjacency() {
        let t = line_topology();
        let a = t.node_by_name("A").unwrap();
        let b = t.node_by_name("B").unwrap();
        let c = t.node_by_name("C").unwrap();
        assert_eq!(t.out_links(a).count(), 1);
        assert_eq!(t.out_links(b).count(), 2);
        assert_eq!(t.in_links(c).count(), 1);
        let ab = t.link_between(a, b).unwrap();
        assert_eq!(t.link(ab).dst(), b);
        assert!(t.link_between(a, c).is_none());
    }

    #[test]
    fn link_labels() {
        let t = line_topology();
        let a = t.node_by_name("A").unwrap();
        let b = t.node_by_name("B").unwrap();
        let ab = t.link_between(a, b).unwrap();
        assert_eq!(t.link_label(ab), "A-B");
    }

    #[test]
    fn connectivity_ok() {
        assert!(line_topology().validate_connected().is_ok());
    }

    #[test]
    fn disconnected_detected() {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        b.node("LONER");
        b.bidirectional(a, bb, 100.0, 1.0, LinkKind::Backbone);
        let t = b.build().unwrap();
        assert_eq!(
            t.validate_connected(),
            Err(TopologyError::Disconnected("LONER".into()))
        );
    }

    #[test]
    fn monitorable_excludes_access_links() {
        let mut b = TopologyBuilder::new();
        let cust = b.external_node("CUST");
        let pop = b.node("POP1");
        let pop2 = b.node("POP2");
        b.link(cust, pop, 155.0, 1.0, LinkKind::Access);
        b.bidirectional(pop, pop2, 2488.0, 10.0, LinkKind::Backbone);
        let t = b.build().unwrap();
        assert_eq!(t.num_links(), 3);
        let mon = t.monitorable_links();
        assert_eq!(mon.len(), 2);
        assert!(mon.iter().all(|&l| t.link(l).monitorable()));
    }

    #[test]
    fn duplicate_links_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let c = b.node("B");
        b.link(a, c, 100.0, 1.0, LinkKind::Backbone);
        b.link(a, c, 200.0, 2.0, LinkKind::Backbone);
        assert!(matches!(
            b.build(),
            Err(TopologyError::DuplicateLink { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            TopologyBuilder::new().build(),
            Err(TopologyError::Empty)
        ));
    }
}
