//! Random topology generators.
//!
//! The convergence experiment of the paper (§IV-D) runs the solver on many
//! randomized problem instances; beyond perturbing GEANT inputs, the
//! benchmark suite also scales the solver over synthetic backbones of varying
//! size. Two classic generators are provided:
//!
//! * [`ring_with_chords`] — a guaranteed-connected ring plus random chord
//!   edges; mimics the ring-and-shortcut shape of many national backbones.
//! * [`gabriel_like`] — random geometric placement with edges between close
//!   pairs plus a connectivity repair pass; produces Waxman-flavoured
//!   topologies with geographic locality.

use crate::{LinkKind, NodeId, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Capacity tiers assigned randomly to generated links (OC-3/OC-12/OC-48).
const CAPACITY_TIERS: [f64; 3] = [155.0, 622.0, 2488.0];

fn random_capacity_weight(rng: &mut StdRng) -> (f64, f64) {
    let tier = rng.random_range(0..CAPACITY_TIERS.len());
    let cap = CAPACITY_TIERS[tier];
    // Higher-capacity links get lower IGP weights, with jitter so shortest
    // paths are (almost surely) unique.
    let base = match tier {
        0 => 20.0,
        1 => 10.0,
        _ => 5.0,
    };
    let weight = base + rng.random_range(0.0..1.0);
    (cap, weight)
}

/// Generates a connected backbone of `n` PoPs: a bidirectional ring plus
/// `chords` random bidirectional chord edges (duplicates are skipped, so the
/// realized chord count can be lower).
///
/// # Panics
/// Panics if `n < 3`.
pub fn ring_with_chords(n: usize, chords: usize, seed: u64) -> Topology {
    assert!(n >= 3, "ring needs at least 3 nodes, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.node(format!("P{i:02}"))).collect();
    let mut present = std::collections::HashSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let (cap, w) = random_capacity_weight(&mut rng);
        b.bidirectional(nodes[i], nodes[j], cap, w, LinkKind::Backbone);
        present.insert((i.min(j), i.max(j)));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < chords * 20 {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        let key = (i.min(j), i.max(j));
        if !present.insert(key) {
            continue;
        }
        let (cap, w) = random_capacity_weight(&mut rng);
        b.bidirectional(nodes[i], nodes[j], cap, w, LinkKind::Backbone);
        added += 1;
    }
    let topo = b.build().expect("generator produces valid topologies");
    debug_assert!(topo.validate_connected().is_ok());
    topo
}

/// Generates a geometric topology: `n` PoPs placed uniformly in the unit
/// square, bidirectional edges between all pairs closer than `radius`, and a
/// connectivity repair pass that links each stranded component to its
/// nearest connected neighbour.
///
/// # Panics
/// Panics if `n == 0` or `radius` is not in `(0, ~1.42]`.
pub fn gabriel_like(n: usize, radius: f64, seed: u64) -> Topology {
    assert!(n > 0, "need at least one node");
    assert!(
        radius > 0.0 && radius <= 1.5,
        "radius {radius} out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();

    let mut b = TopologyBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.node(format!("P{i:02}"))).collect();

    let dist = |i: usize, j: usize| -> f64 {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        (dx * dx + dy * dy).sqrt()
    };

    // Union-find for the repair pass.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if dist(i, j) <= radius {
                let (cap, w) = random_capacity_weight(&mut rng);
                b.bidirectional(nodes[i], nodes[j], cap, w, LinkKind::Backbone);
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    // Repair: connect each remaining component to the nearest outside node.
    loop {
        let root0 = find(&mut parent, 0);
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if find(&mut parent, i) == root0 {
                continue;
            }
            for j in 0..n {
                if find(&mut parent, j) != root0 {
                    continue;
                }
                let d = dist(i, j);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        match best {
            None => break, // fully connected
            Some((i, j, _)) => {
                let (cap, w) = random_capacity_weight(&mut rng);
                b.bidirectional(nodes[i], nodes[j], cap, w, LinkKind::Backbone);
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }

    let topo = b.build().expect("generator produces valid topologies");
    debug_assert!(topo.validate_connected().is_ok());
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_connected_and_sized() {
        let t = ring_with_chords(10, 5, 42);
        assert_eq!(t.num_nodes(), 10);
        assert!(t.num_links() >= 20); // ring alone
        assert!(t.validate_connected().is_ok());
    }

    #[test]
    fn ring_deterministic_for_seed() {
        let a = ring_with_chords(8, 4, 7);
        let b = ring_with_chords(8, 4, 7);
        assert_eq!(a.num_links(), b.num_links());
        for l in a.link_ids() {
            assert_eq!(a.link_label(l), b.link_label(l));
            assert_eq!(a.link(l).igp_weight(), b.link(l).igp_weight());
        }
    }

    #[test]
    fn ring_differs_across_seeds() {
        let a = ring_with_chords(12, 8, 1);
        let b = ring_with_chords(12, 8, 2);
        // Chord sets almost surely differ; compare label multisets.
        let labels = |t: &Topology| {
            let mut v: Vec<String> = t.link_ids().map(|l| t.link_label(l)).collect();
            v.sort();
            v
        };
        assert_ne!(labels(&a), labels(&b));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_ring_rejected() {
        let _ = ring_with_chords(2, 0, 0);
    }

    #[test]
    fn geometric_is_connected() {
        for seed in 0..5 {
            let t = gabriel_like(20, 0.2, seed);
            assert_eq!(t.num_nodes(), 20);
            assert!(t.validate_connected().is_ok(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn geometric_single_node() {
        let t = gabriel_like(1, 0.3, 0);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_links(), 0);
        assert!(t.validate_connected().is_ok());
    }

    #[test]
    fn generated_links_have_valid_tiers() {
        let t = ring_with_chords(15, 10, 3);
        for l in t.link_ids() {
            let cap = t.link(l).capacity_mbps();
            assert!(CAPACITY_TIERS.contains(&cap), "unexpected capacity {cap}");
            assert!(t.link(l).igp_weight() > 0.0);
        }
    }
}
