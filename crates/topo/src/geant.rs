//! GEANT-2004-like reference backbone.
//!
//! The paper evaluates on the GEANT European research network as of November
//! 2004: 22-odd PoPs and 72 unidirectional backbone links with line rates
//! between OC-3 (155 Mb/s) and OC-48 (2.5 Gb/s). The exact contemporary
//! topology and its IS-IS metrics are not public, so this module provides a
//! faithful *reconstruction*: the same PoP set as the paper's Table I, 36
//! bidirectional edges (= 72 unidirectional links), and IGP weights chosen so
//! the shortest paths referenced by the paper hold:
//!
//! * the UK PoP has exactly six backbone neighbours (FR, NL, SE, NY, PT, IE) —
//!   the "six UK links" of §V-C;
//! * Poland is reached from the UK via Sweden (the SE-PL monitor of Table I);
//! * Slovakia via the Czech Republic (CZ-SK), Luxembourg via France (FR-LU),
//!   Israel via Italy (IT-IL), Belgium via France (FR-BE).
//!
//! An external `JANET` node (the UK research network, AS 786) attaches to the
//! UK PoP through an [`LinkKind::Access`] link, which is excluded from the
//! monitorable set exactly as the paper excludes access links.

use crate::{LinkId, LinkKind, NodeId, Topology, TopologyBuilder};

/// Name of the external customer node representing JANET (AS 786).
pub const JANET_NODE: &str = "JANET";

/// The 22 GEANT PoPs of the reference topology, by country code (NY is the
/// New York transatlantic PoP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // country codes are self-describing
pub enum GeantPop {
    AT,
    BE,
    CH,
    CZ,
    DE,
    ES,
    FR,
    GR,
    HR,
    HU,
    IE,
    IL,
    IT,
    LU,
    NL,
    NY,
    PL,
    PT,
    SE,
    SI,
    SK,
    UK,
}

impl GeantPop {
    /// All PoPs in declaration order.
    pub const ALL: [GeantPop; 22] = [
        GeantPop::AT,
        GeantPop::BE,
        GeantPop::CH,
        GeantPop::CZ,
        GeantPop::DE,
        GeantPop::ES,
        GeantPop::FR,
        GeantPop::GR,
        GeantPop::HR,
        GeantPop::HU,
        GeantPop::IE,
        GeantPop::IL,
        GeantPop::IT,
        GeantPop::LU,
        GeantPop::NL,
        GeantPop::NY,
        GeantPop::PL,
        GeantPop::PT,
        GeantPop::SE,
        GeantPop::SI,
        GeantPop::SK,
        GeantPop::UK,
    ];

    /// The PoP's country-code name as used for topology lookup.
    pub fn name(self) -> &'static str {
        match self {
            GeantPop::AT => "AT",
            GeantPop::BE => "BE",
            GeantPop::CH => "CH",
            GeantPop::CZ => "CZ",
            GeantPop::DE => "DE",
            GeantPop::ES => "ES",
            GeantPop::FR => "FR",
            GeantPop::GR => "GR",
            GeantPop::HR => "HR",
            GeantPop::HU => "HU",
            GeantPop::IE => "IE",
            GeantPop::IL => "IL",
            GeantPop::IT => "IT",
            GeantPop::LU => "LU",
            GeantPop::NL => "NL",
            GeantPop::NY => "NY",
            GeantPop::PL => "PL",
            GeantPop::PT => "PT",
            GeantPop::SE => "SE",
            GeantPop::SI => "SI",
            GeantPop::SK => "SK",
            GeantPop::UK => "UK",
        }
    }
}

/// Line rates used by the reference topology, in Mbit/s.
const OC48: f64 = 2488.0;
const OC12: f64 = 622.0;
const OC3: f64 = 155.0;

/// Builds the GEANT-2004-like reference topology: 23 nodes (22 PoPs plus the
/// external [`JANET_NODE`]), 72 unidirectional backbone links, and a
/// bidirectional JANET↔UK access-link pair.
///
/// The topology is weakly connected and has unique (ECMP-free) shortest
/// paths from the UK PoP to every other PoP under the embedded IGP weights —
/// both properties are asserted by this crate's tests.
pub fn geant() -> Topology {
    let mut b = TopologyBuilder::new();
    let id = |b: &mut TopologyBuilder, p: GeantPop| -> NodeId { b.node(p.name()) };

    use GeantPop::*;
    let at = id(&mut b, AT);
    let be = id(&mut b, BE);
    let ch = id(&mut b, CH);
    let cz = id(&mut b, CZ);
    let de = id(&mut b, DE);
    let es = id(&mut b, ES);
    let fr = id(&mut b, FR);
    let gr = id(&mut b, GR);
    let hr = id(&mut b, HR);
    let hu = id(&mut b, HU);
    let ie = id(&mut b, IE);
    let il = id(&mut b, IL);
    let it = id(&mut b, IT);
    let lu = id(&mut b, LU);
    let nl = id(&mut b, NL);
    let ny = id(&mut b, NY);
    let pl = id(&mut b, PL);
    let pt = id(&mut b, PT);
    let se = id(&mut b, SE);
    let si = id(&mut b, SI);
    let sk = id(&mut b, SK);
    let uk = id(&mut b, UK);

    // (a, b, capacity, IGP weight) — 36 bidirectional edges = 72 links.
    let edges: [(NodeId, NodeId, f64, f64); 36] = [
        // The six UK backbone adjacencies (§V-C's "UK links").
        (uk, fr, OC48, 5.0),
        (uk, nl, OC48, 5.0),
        (uk, se, OC12, 10.0),
        (uk, ny, OC48, 5.0),
        (uk, pt, OC12, 10.0),
        (uk, ie, OC3, 20.0),
        // Western Europe.
        (fr, be, OC12, 10.0),
        (fr, lu, OC3, 20.0),
        (fr, ch, OC48, 5.0),
        (fr, es, OC12, 10.0),
        (nl, de, OC48, 5.0),
        (nl, be, OC12, 15.0),
        (se, nl, OC12, 15.0),
        // German hub.
        (de, at, OC12, 10.0),
        (de, ch, OC48, 10.0),
        (de, cz, OC12, 10.0),
        (de, se, OC48, 10.0),
        (de, ny, OC48, 30.0),
        (de, pl, OC12, 20.0),
        (de, gr, OC12, 35.0),
        (lu, de, OC3, 20.0),
        // Nordics / Central-Eastern Europe.
        (se, pl, OC12, 10.0),
        (cz, sk, OC3, 15.0),
        (cz, pl, OC12, 20.0),
        (at, hu, OC12, 15.0),
        (at, si, OC3, 15.0),
        (at, ch, OC12, 15.0),
        (hu, hr, OC3, 15.0),
        (hu, sk, OC3, 20.0),
        (si, hr, OC3, 10.0),
        // Southern Europe / Mediterranean.
        (it, ch, OC48, 10.0),
        (it, at, OC12, 15.0),
        (it, gr, OC12, 20.0),
        (it, il, OC3, 25.0),
        (es, pt, OC12, 20.0),
        (es, it, OC12, 20.0),
    ];
    for (a, z, cap, w) in edges {
        b.bidirectional(a, z, cap, w, LinkKind::Backbone);
    }

    // External customer attachment: JANET <-> UK (not monitorable).
    let janet = b.external_node(JANET_NODE);
    b.bidirectional(janet, uk, OC48, 1.0, LinkKind::Access);

    let topo = b.build().expect("reference topology is statically valid");
    debug_assert!(topo.validate_connected().is_ok());
    topo
}

/// The JANET→UK access link of the [`geant`] topology — the ingress link of
/// every OD pair in the paper's measurement task.
///
/// # Panics
/// Panics if `topo` is not the topology produced by [`geant`].
pub fn janet_access_link(topo: &Topology) -> LinkId {
    let janet = topo.node_by_name(JANET_NODE).expect("JANET node present");
    let uk = topo.node_by_name("UK").expect("UK node present");
    topo.link_between(janet, uk)
        .expect("JANET-UK access link present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_link_counts_match_paper() {
        let t = geant();
        assert_eq!(t.num_nodes(), 23); // 22 PoPs + JANET
                                       // 72 unidirectional backbone links, as in the paper, + 2 access links.
        assert_eq!(t.num_links(), 74);
        assert_eq!(t.monitorable_links().len(), 72);
    }

    #[test]
    fn all_pops_resolvable() {
        let t = geant();
        for p in GeantPop::ALL {
            assert!(
                t.node_by_name(p.name()).is_some(),
                "missing PoP {}",
                p.name()
            );
        }
        assert!(t.node_by_name(JANET_NODE).is_some());
    }

    #[test]
    fn uk_has_six_backbone_neighbours() {
        let t = geant();
        let uk = t.node_by_name("UK").unwrap();
        let backbone_out: Vec<_> = t
            .out_links(uk)
            .filter(|&l| t.link(l).monitorable())
            .collect();
        assert_eq!(backbone_out.len(), 6);
        let mut names: Vec<_> = backbone_out
            .iter()
            .map(|&l| t.node(t.link(l).dst()).name().to_string())
            .collect();
        names.sort();
        assert_eq!(names, ["FR", "IE", "NL", "NY", "PT", "SE"]);
    }

    #[test]
    fn connected() {
        assert!(geant().validate_connected().is_ok());
    }

    #[test]
    fn janet_access_link_is_not_monitorable() {
        let t = geant();
        let l = janet_access_link(&t);
        assert!(!t.link(l).monitorable());
        assert_eq!(t.node(t.link(l).src()).name(), "JANET");
        assert_eq!(t.node(t.link(l).dst()).name(), "UK");
    }

    #[test]
    fn capacities_span_oc3_to_oc48() {
        let t = geant();
        let caps: Vec<f64> = t.link_ids().map(|l| t.link(l).capacity_mbps()).collect();
        assert!(caps.contains(&155.0));
        assert!(caps.contains(&622.0));
        assert!(caps.contains(&2488.0));
    }

    #[test]
    fn symmetric_links_everywhere() {
        // Every link has a reverse twin with identical capacity and weight.
        let t = geant();
        for l in t.link_ids() {
            let link = t.link(l);
            let rev = t
                .link_between(link.dst(), link.src())
                .unwrap_or_else(|| panic!("missing reverse of {}", t.link_label(l)));
            assert_eq!(t.link(rev).capacity_mbps(), link.capacity_mbps());
            assert_eq!(t.link(rev).igp_weight(), link.igp_weight());
        }
    }
}
