//! Abilene (Internet2) reference backbone.
//!
//! The paper argues (§V-C) that the advantage of network-wide sampling "is
//! not limited to the specific network topology under consideration",
//! because backbone designs generally give small OD pairs quiet downstream
//! links. To test that claim, the workspace carries a second well-known
//! research backbone: Abilene, the Internet2 network circa 2004 — 11 PoPs
//! and 14 bidirectional OC-192 trunks — with an external customer attached
//! at the New York PoP.
//!
//! IGP weights approximate the real latency-derived metrics (scaled route
//! miles); capacities are uniform OC-192, so unlike GEANT the load asymmetry
//! comes purely from the traffic matrix and the topology's shape.

use crate::{LinkId, LinkKind, NodeId, Topology, TopologyBuilder};

/// Name of the external customer node attached to the New York PoP.
pub const ABILENE_CUSTOMER: &str = "CUST";

/// The 11 Abilene PoP names (airport-style codes used by Internet2).
pub const ABILENE_POPS: [&str; 11] = [
    "STTL", // Seattle
    "SNVA", // Sunnyvale
    "LOSA", // Los Angeles
    "DNVR", // Denver
    "KSCY", // Kansas City
    "HSTN", // Houston
    "IPLS", // Indianapolis
    "ATLA", // Atlanta
    "CHIN", // Chicago
    "WASH", // Washington DC
    "NYCM", // New York
];

/// OC-192 line rate in Mbit/s.
const OC192: f64 = 9953.0;

/// Builds the Abilene reference topology: 11 PoPs, 28 unidirectional
/// backbone links, plus a customer node on NYCM through an access-link pair.
pub fn abilene() -> Topology {
    let mut b = TopologyBuilder::new();
    let ids: Vec<NodeId> = ABILENE_POPS.iter().map(|&n| b.node(n)).collect();
    let id = |name: &str| -> NodeId {
        ids[ABILENE_POPS
            .iter()
            .position(|&p| p == name)
            .expect("known PoP")]
    };

    // (a, b, igp weight) — 14 bidirectional trunks.
    let edges: [(&str, &str, f64); 14] = [
        ("STTL", "SNVA", 10.0),
        ("STTL", "DNVR", 13.0),
        ("SNVA", "LOSA", 5.0),
        ("SNVA", "DNVR", 12.0),
        ("LOSA", "HSTN", 18.0),
        ("DNVR", "KSCY", 7.0),
        ("KSCY", "HSTN", 9.0),
        ("KSCY", "IPLS", 6.0),
        ("HSTN", "ATLA", 11.0),
        ("IPLS", "CHIN", 3.0),
        ("IPLS", "ATLA", 8.0),
        ("ATLA", "WASH", 7.0),
        ("CHIN", "NYCM", 9.0),
        ("WASH", "NYCM", 3.0),
    ];
    for (a, z, w) in edges {
        b.bidirectional(id(a), id(z), OC192, w, LinkKind::Backbone);
    }

    let cust = b.external_node(ABILENE_CUSTOMER);
    b.bidirectional(cust, id("NYCM"), OC192, 1.0, LinkKind::Access);

    let topo = b.build().expect("reference topology is statically valid");
    debug_assert!(topo.validate_connected().is_ok());
    topo
}

/// The customer's access link into NYCM (the ingress of the cross-network
/// measurement task).
///
/// # Panics
/// Panics if `topo` is not the topology produced by [`abilene`].
pub fn abilene_access_link(topo: &Topology) -> LinkId {
    let cust = topo
        .node_by_name(ABILENE_CUSTOMER)
        .expect("customer present");
    let nycm = topo.node_by_name("NYCM").expect("NYCM present");
    topo.link_between(cust, nycm).expect("access link present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let t = abilene();
        assert_eq!(t.num_nodes(), 12); // 11 PoPs + customer
        assert_eq!(t.num_links(), 30); // 28 backbone + 2 access
        assert_eq!(t.monitorable_links().len(), 28);
        assert!(t.validate_connected().is_ok());
    }

    #[test]
    fn all_pops_resolvable() {
        let t = abilene();
        for p in ABILENE_POPS {
            assert!(t.node_by_name(p).is_some(), "missing {p}");
        }
        assert!(t
            .node(t.node_by_name(ABILENE_CUSTOMER).unwrap())
            .is_external());
    }

    #[test]
    fn access_link_not_monitorable() {
        let t = abilene();
        let l = abilene_access_link(&t);
        assert!(!t.link(l).monitorable());
        assert_eq!(t.node(t.link(l).dst()).name(), "NYCM");
    }

    #[test]
    fn uniform_capacity() {
        let t = abilene();
        for l in t.monitorable_links() {
            assert_eq!(t.link(l).capacity_mbps(), OC192);
        }
    }

    #[test]
    fn symmetric_weights() {
        let t = abilene();
        for l in t.link_ids() {
            let link = t.link(l);
            let rev = t
                .link_between(link.dst(), link.src())
                .expect("reverse link");
            assert_eq!(t.link(rev).igp_weight(), link.igp_weight());
        }
    }
}
