//! Plain-text topology serialization.
//!
//! A deliberately small line-oriented format so topologies can be shipped as
//! fixtures and diffed in reviews without pulling a serialization framework
//! into the dependency tree:
//!
//! ```text
//! # comment
//! node UK
//! node JANET external
//! link JANET UK 2488 1 access
//! link UK FR 2488 5 backbone
//! ```
//!
//! * `node NAME [external]` — declares a node (order defines ids).
//! * `link SRC DST CAPACITY_MBPS IGP_WEIGHT KIND` — declares one
//!   unidirectional link; `KIND` is `backbone` or `access`.
//!
//! Round-trip is exact: [`to_text`] emits nodes in id order then links in id
//! order, and [`from_text`] rebuilds identical ids.

use crate::{LinkKind, Result, Topology, TopologyBuilder, TopologyError};
use std::collections::HashMap;

/// Serializes a topology to the plain-text format.
pub fn to_text(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str("# nws-topo v1\n");
    for id in topo.node_ids() {
        let n = topo.node(id);
        out.push_str("node ");
        out.push_str(n.name());
        if n.is_external() {
            out.push_str(" external");
        }
        out.push('\n');
    }
    for id in topo.link_ids() {
        let l = topo.link(id);
        let kind = match l.kind() {
            LinkKind::Backbone => "backbone",
            LinkKind::Access => "access",
        };
        out.push_str(&format!(
            "link {} {} {} {} {}\n",
            topo.node(l.src()).name(),
            topo.node(l.dst()).name(),
            l.capacity_mbps(),
            l.igp_weight(),
            kind
        ));
    }
    out
}

/// Renders the topology as a Graphviz `dot` digraph for visualization.
///
/// Bidirectional fibre pairs are collapsed into one undirected-style edge
/// (`dir=both`) to keep diagrams readable; asymmetric links keep their
/// arrow. External nodes are drawn as boxes, access links dashed. Optional
/// `highlight` link ids (e.g. activated monitors) are drawn bold red with
/// their value as the label.
pub fn to_dot(topo: &Topology, highlight: &[(crate::LinkId, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph topology {\n  layout=neato;\n  overlap=false;\n");
    for id in topo.node_ids() {
        let n = topo.node(id);
        let shape = if n.is_external() { "box" } else { "ellipse" };
        writeln!(out, "  \"{}\" [shape={shape}];", n.name()).expect("write to string");
    }
    let mut drawn = vec![false; topo.num_links()];
    for id in topo.link_ids() {
        if drawn[id.index()] {
            continue;
        }
        let l = topo.link(id);
        let reverse = topo.link_between(l.dst(), l.src());
        let symmetric = reverse.is_some_and(|r| {
            let rl = topo.link(r);
            rl.capacity_mbps() == l.capacity_mbps() && rl.igp_weight() == l.igp_weight()
        });
        let mut attrs = Vec::new();
        if symmetric {
            attrs.push("dir=both".to_string());
            if let Some(r) = reverse {
                drawn[r.index()] = true;
            }
        }
        if l.kind() == LinkKind::Access {
            attrs.push("style=dashed".to_string());
        }
        let hl = highlight
            .iter()
            .find(|&&(h, _)| h == id || (symmetric && reverse == Some(h)));
        if let Some(&(_, value)) = hl {
            attrs.push("color=red".to_string());
            attrs.push("penwidth=2".to_string());
            attrs.push(format!("label=\"{value:.4}\""));
        } else {
            attrs.push(format!("label=\"{}\"", l.igp_weight()));
        }
        drawn[id.index()] = true;
        writeln!(
            out,
            "  \"{}\" -> \"{}\" [{}];",
            topo.node(l.src()).name(),
            topo.node(l.dst()).name(),
            attrs.join(", ")
        )
        .expect("write to string");
    }
    out.push_str("}\n");
    out
}

/// Parses a topology from the plain-text format.
///
/// # Errors
/// [`TopologyError::Parse`] with the offending line number for malformed
/// input; other [`TopologyError`] variants for semantically invalid
/// topologies (duplicate names, duplicate links, empty).
pub fn from_text(text: &str) -> Result<Topology> {
    let mut b = TopologyBuilder::new();
    let mut ids: HashMap<String, crate::NodeId> = HashMap::new();

    let parse_err = |line: usize, message: &str| TopologyError::Parse {
        line,
        message: message.to_string(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let name = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "node requires a name"))?;
                let external = match parts.next() {
                    None => false,
                    Some("external") => true,
                    Some(other) => {
                        return Err(parse_err(lineno, &format!("unexpected token '{other}'")))
                    }
                };
                if ids.contains_key(name) {
                    return Err(TopologyError::DuplicateNodeName(name.to_string()));
                }
                let id = if external {
                    b.external_node(name)
                } else {
                    b.node(name)
                };
                ids.insert(name.to_string(), id);
            }
            Some("link") => {
                let src_name = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "link requires SRC"))?;
                let dst_name = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "link requires DST"))?;
                let cap: f64 = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "link requires CAPACITY"))?
                    .parse()
                    .map_err(|_| parse_err(lineno, "CAPACITY must be a number"))?;
                let weight: f64 = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "link requires WEIGHT"))?
                    .parse()
                    .map_err(|_| parse_err(lineno, "WEIGHT must be a number"))?;
                let kind = match parts.next() {
                    Some("backbone") => LinkKind::Backbone,
                    Some("access") => LinkKind::Access,
                    Some(other) => {
                        return Err(parse_err(lineno, &format!("unknown link kind '{other}'")))
                    }
                    None => return Err(parse_err(lineno, "link requires KIND")),
                };
                if !(cap.is_finite() && cap > 0.0) {
                    return Err(parse_err(lineno, "CAPACITY must be positive"));
                }
                if !(weight.is_finite() && weight > 0.0) {
                    return Err(parse_err(lineno, "WEIGHT must be positive"));
                }
                let src = *ids
                    .get(src_name)
                    .ok_or_else(|| TopologyError::UnknownNode(src_name.to_string()))?;
                let dst = *ids
                    .get(dst_name)
                    .ok_or_else(|| TopologyError::UnknownNode(dst_name.to_string()))?;
                if src == dst {
                    return Err(parse_err(lineno, "self-loop links are not allowed"));
                }
                b.link(src, dst, cap, weight, kind);
            }
            Some(other) => return Err(parse_err(lineno, &format!("unknown directive '{other}'"))),
            None => unreachable!("empty lines filtered above"),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geant;

    #[test]
    fn roundtrip_small() {
        let text = "\
# test
node A
node B
node EXT external
link A B 622 10 backbone
link EXT A 155 1 access
";
        let topo = from_text(text).unwrap();
        assert_eq!(topo.num_nodes(), 3);
        assert_eq!(topo.num_links(), 2);
        assert!(topo.node(topo.node_by_name("EXT").unwrap()).is_external());

        let again = from_text(&to_text(&topo)).unwrap();
        assert_eq!(again.num_nodes(), 3);
        assert_eq!(again.num_links(), 2);
        let a = again.node_by_name("A").unwrap();
        let b = again.node_by_name("B").unwrap();
        let ab = again.link_between(a, b).unwrap();
        assert_eq!(again.link(ab).capacity_mbps(), 622.0);
        assert_eq!(again.link(ab).igp_weight(), 10.0);
    }

    #[test]
    fn roundtrip_geant() {
        let g = geant();
        let re = from_text(&to_text(&g)).unwrap();
        assert_eq!(re.num_nodes(), g.num_nodes());
        assert_eq!(re.num_links(), g.num_links());
        for l in g.link_ids() {
            assert_eq!(re.link_label(l), g.link_label(l));
            assert_eq!(re.link(l).kind(), g.link(l).kind());
            assert_eq!(re.link(l).igp_weight(), g.link(l).igp_weight());
        }
    }

    #[test]
    fn dot_export_basic() {
        let g = geant();
        let dot = to_dot(&g, &[]);
        assert!(dot.starts_with("digraph topology {"));
        assert!(dot.ends_with("}\n"));
        // External node drawn as a box; access link dashed.
        assert!(dot.contains("\"JANET\" [shape=box]"));
        assert!(dot.contains("style=dashed"));
        // Symmetric fibres collapsed: UK appears with dir=both edges.
        assert!(dot.contains("dir=both"));
    }

    #[test]
    fn dot_export_highlights_monitors() {
        let g = geant();
        let uk = g.require_node("UK").unwrap();
        let fr = g.require_node("FR").unwrap();
        let l = g.link_between(uk, fr).unwrap();
        let dot = to_dot(&g, &[(l, 0.0123)]);
        assert!(dot.contains("color=red"));
        assert!(dot.contains("0.0123"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = from_text("frobnicate A").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_capacity_rejected() {
        let err = from_text("node A\nnode B\nlink A B notanumber 1 backbone").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 3, .. }));
    }

    #[test]
    fn negative_weight_rejected() {
        let err = from_text("node A\nnode B\nlink A B 100 -1 backbone").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 3, .. }));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let err = from_text("node A\nlink A Z 100 1 backbone").unwrap_err();
        assert_eq!(err, TopologyError::UnknownNode("Z".into()));
    }

    #[test]
    fn unknown_kind_rejected() {
        let err = from_text("node A\nnode B\nlink A B 100 1 wireless").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 3, .. }));
    }

    #[test]
    fn missing_kind_rejected() {
        let err = from_text("node A\nnode B\nlink A B 100 1").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 3, .. }));
    }

    #[test]
    fn self_loop_rejected_in_parser() {
        let err = from_text("node A\nlink A A 100 1 backbone").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let topo = from_text("\n# hi\nnode A\n\n# more\nnode B\nlink A B 10 1 backbone\n").unwrap();
        assert_eq!(topo.num_nodes(), 2);
    }

    #[test]
    fn duplicate_node_name_detected_early() {
        let err = from_text("node A\nnode A").unwrap_err();
        assert_eq!(err, TopologyError::DuplicateNodeName("A".into()));
    }
}
