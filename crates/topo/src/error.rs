//! Error type for topology construction and parsing.

use std::fmt;

/// Errors produced when building, validating or parsing a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// Two nodes were registered with the same name.
    DuplicateNodeName(String),
    /// A lookup referenced a node name that does not exist.
    UnknownNode(String),
    /// A duplicate unidirectional link between the same node pair.
    DuplicateLink {
        /// Name of the source node.
        src: String,
        /// Name of the destination node.
        dst: String,
    },
    /// The topology has no nodes.
    Empty,
    /// The topology is not weakly connected (some node is unreachable even
    /// ignoring link direction), listing one offending node.
    Disconnected(String),
    /// A parse error in the plain-text topology format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateNodeName(n) => write!(f, "duplicate node name: {n}"),
            TopologyError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            TopologyError::DuplicateLink { src, dst } => {
                write!(f, "duplicate link {src} -> {dst}")
            }
            TopologyError::Empty => write!(f, "topology has no nodes"),
            TopologyError::Disconnected(n) => {
                write!(f, "topology is disconnected: node {n} is unreachable")
            }
            TopologyError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TopologyError::DuplicateNodeName("UK".into()).to_string(),
            "duplicate node name: UK"
        );
        assert_eq!(
            TopologyError::UnknownNode("XX".into()).to_string(),
            "unknown node: XX"
        );
        assert_eq!(
            TopologyError::DuplicateLink {
                src: "A".into(),
                dst: "B".into()
            }
            .to_string(),
            "duplicate link A -> B"
        );
        assert_eq!(TopologyError::Empty.to_string(), "topology has no nodes");
        assert_eq!(
            TopologyError::Disconnected("Z".into()).to_string(),
            "topology is disconnected: node Z is unreachable"
        );
        assert_eq!(
            TopologyError::Parse {
                line: 4,
                message: "bad field".into()
            }
            .to_string(),
            "parse error at line 4: bad field"
        );
    }
}
