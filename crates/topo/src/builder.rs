//! Fluent topology construction.

use crate::{Link, LinkKind, Node, NodeId, Result, Topology};

/// Incremental builder for [`Topology`].
///
/// Duplicate node names and duplicate directed links are detected at
/// [`TopologyBuilder::build`] time, so construction code stays infallible
/// and readable.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a backbone node, returning its id.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(Node::new(name))
    }

    /// Adds an external (customer/peer) node, returning its id.
    pub fn external_node(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(Node::external(name))
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds a single unidirectional link, returning its id.
    ///
    /// # Panics
    /// Panics on invalid link parameters (see [`Link::new`]) or on node ids
    /// not produced by this builder.
    pub fn link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity_mbps: f64,
        igp_weight: f64,
        kind: LinkKind,
    ) -> crate::LinkId {
        assert!(src.index() < self.nodes.len(), "src node id out of range");
        assert!(dst.index() < self.nodes.len(), "dst node id out of range");
        let id = crate::LinkId(self.links.len() as u32);
        self.links
            .push(Link::new(src, dst, capacity_mbps, igp_weight, kind));
        id
    }

    /// Adds a symmetric pair of links (`a -> b` and `b -> a`) with identical
    /// capacity and weight, returning both ids. Matches how real backbone
    /// fibre pairs are provisioned.
    pub fn bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_mbps: f64,
        igp_weight: f64,
        kind: LinkKind,
    ) -> (crate::LinkId, crate::LinkId) {
        let ab = self.link(a, b, capacity_mbps, igp_weight, kind);
        let ba = self.link(b, a, capacity_mbps, igp_weight, kind);
        (ab, ba)
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Finalizes the topology.
    ///
    /// # Errors
    /// [`crate::TopologyError::Empty`], [`crate::TopologyError::DuplicateNodeName`]
    /// or [`crate::TopologyError::DuplicateLink`].
    pub fn build(self) -> Result<Topology> {
        Topology::assemble(self.nodes, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyError;

    #[test]
    fn build_simple() {
        let mut b = TopologyBuilder::new();
        let a = b.node("A");
        let z = b.node("Z");
        let (az, za) = b.bidirectional(a, z, 1000.0, 5.0, LinkKind::Backbone);
        assert_eq!(b.num_nodes(), 2);
        assert_eq!(b.num_links(), 2);
        let t = b.build().unwrap();
        assert_eq!(t.link(az).src(), a);
        assert_eq!(t.link(za).src(), z);
        assert_eq!(t.link(az).igp_weight(), 5.0);
    }

    #[test]
    fn duplicate_names_rejected_at_build() {
        let mut b = TopologyBuilder::new();
        b.node("X");
        b.node("X");
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::DuplicateNodeName("X".into())
        );
    }

    #[test]
    #[should_panic(expected = "dst node id out of range")]
    fn foreign_node_id_panics() {
        let mut other = TopologyBuilder::new();
        let a = other.node("A");
        let b_id = other.node("B");
        let _ = (a, b_id);

        let mut b = TopologyBuilder::new();
        let only = b.node("ONLY");
        b.link(only, b_id, 100.0, 1.0, LinkKind::Backbone);
    }

    #[test]
    fn external_nodes_flagged() {
        let mut b = TopologyBuilder::new();
        let j = b.external_node("JANET");
        let u = b.node("UK");
        b.link(j, u, 2488.0, 1.0, LinkKind::Access);
        let t = b.build().unwrap();
        assert!(t.node(j).is_external());
        assert!(!t.node(u).is_external());
    }
}
