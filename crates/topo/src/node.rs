//! Node (PoP) metadata.

/// A node of the topology — typically a Point of Presence (PoP) of the
/// backbone, or an external customer/peer attachment point.
///
/// The optimization framework is agnostic to what a node represents
/// (end-host, prefix, AS, PoP — paper §III); the metadata here exists for
/// reporting and for building measurement tasks by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    name: String,
    external: bool,
}

impl Node {
    /// Creates a backbone (internal) node.
    pub fn new(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            external: false,
        }
    }

    /// Creates an external node (customer or peer attachment, e.g. the JANET
    /// AS in the paper's evaluation).
    pub fn external(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            external: true,
        }
    }

    /// The node's human-readable name (unique within a topology).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True if the node models an external network rather than a backbone PoP.
    pub fn is_external(&self) -> bool {
        self.external
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_node() {
        let n = Node::new("UK");
        assert_eq!(n.name(), "UK");
        assert!(!n.is_external());
    }

    #[test]
    fn external_node() {
        let n = Node::external("JANET");
        assert_eq!(n.name(), "JANET");
        assert!(n.is_external());
    }
}
