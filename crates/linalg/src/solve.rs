//! LU factorization with partial pivoting and the solvers built on it.

use crate::{LinalgError, Matrix, Result, Vector, EPS};

/// LU factorization of a square matrix with partial (row) pivoting:
/// `P·A = L·U`.
///
/// The factors are stored compactly in a single matrix (`L` below the
/// diagonal with implicit unit diagonal, `U` on and above it), alongside the
/// row-permutation vector. Factor once, then solve against many right-hand
/// sides with [`Lu::solve`].
///
/// ```
/// use nws_linalg::{Lu, Matrix, Vector};
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
/// let lu = Lu::factor(&a).unwrap();
/// let x = lu.solve(&Vector::from(vec![2.0, 2.0])).unwrap();
/// assert!(x.approx_eq(&Vector::from(vec![1.0, 1.0]), 1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (strictly lower, unit diagonal implicit) and U (upper).
    lu: Matrix,
    /// Row permutation: row `i` of the factored system is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used by the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Factors `a` as `P·A = L·U` using partial pivoting.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::Singular`] if a pivot column is numerically zero.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to the
            // diagonal to bound element growth.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= EPS {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Lu::solve",
                expected: n,
                found: b.len(),
            });
        }
        // Forward substitution with permuted b: L·y = P·b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution: U·x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` by solving against each standard basis vector.
    ///
    /// # Errors
    /// Propagates [`LinalgError`] from [`Lu::solve`] (cannot occur for a
    /// successfully factored matrix, but the signature stays honest).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let x = self.solve(&Vector::basis(n, j))?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the original matrix: `sign(P) · Π U_ii`.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
        (&a.mul_vec(x) - b).norm_inf()
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Vector::from(vec![5.0, 7.0]);
        let x = a.solve(&b).unwrap();
        assert_eq!(x.as_slice(), &[7.0, 5.0]);
    }

    #[test]
    fn solve_3x3_exact() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = Vector::from(vec![8.0, -11.0, -3.0]);
        let x = a.solve(&b).unwrap();
        assert!(x.approx_eq(&Vector::from(vec![2.0, 3.0, -1.0]), 1e-12));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        let bad = Vector::zeros(2);
        assert!(matches!(
            lu.solve(&bad),
            Err(LinalgError::DimensionMismatch {
                expected: 3,
                found: 2,
                ..
            })
        ));
    }

    #[test]
    fn determinant_tracks_permutation_sign() {
        // One row swap => negative permutation sign must be accounted for.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_like_system_small_residual() {
        // A fixed, moderately conditioned 5x5 system.
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0, 2.0],
            &[1.0, 5.0, 1.0, 0.5, 0.0],
            &[0.5, 1.0, 6.0, 1.0, 0.5],
            &[0.0, 0.5, 1.0, 7.0, 1.0],
            &[2.0, 0.0, 0.5, 1.0, 8.0],
        ]);
        let b = Vector::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let x = a.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn inverse_of_permutation_matrix() {
        let p = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]);
        let inv = p.inverse().unwrap();
        assert!(p.mul_mat(&inv).approx_eq(&Matrix::identity(3), 1e-14));
        // Permutation inverse is its transpose.
        assert!(inv.approx_eq(&p.transpose(), 1e-14));
    }

    #[test]
    fn reuse_factorization_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        for b in [vec![1.0, 0.0], vec![0.0, 1.0], vec![4.0, 3.0]] {
            let b = Vector::from(b);
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }
}
