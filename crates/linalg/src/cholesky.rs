//! Cholesky factorization for symmetric positive-definite systems.

use crate::{LinalgError, Matrix, Result, Vector};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Used by the solver's KKT-multiplier computation where the normal-equation
/// matrix `A·Aᵀ` of the active-constraint rows is SPD by construction.
/// Roughly twice as fast as LU and numerically stable without pivoting.
///
/// ```
/// use nws_linalg::{Cholesky, Matrix, Vector};
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::factor(&a).unwrap();
/// let x = ch.solve(&Vector::from(vec![6.0, 5.0])).unwrap();
/// assert!((&a.mul_vec(&x) - &Vector::from(vec![6.0, 5.0])).norm2() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor `L` (upper part left as zeros).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is the caller's responsibility (use [`Matrix::is_symmetric`] to check).
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive diagonal pivot
    /// is encountered.
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via `L·y = b` then `Lᵀ·x = y`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::solve",
                expected: n,
                found: b.len(),
            });
        }
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix: `(Π L_ii)²`.
    pub fn determinant(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            d *= self.l[(i, i)];
        }
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_matrix() {
        // A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((ch.l()[(1, 0)] - 1.0).abs() < 1e-14);
        assert!((ch.l()[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-14);
        assert_eq!(ch.l()[(0, 1)], 0.0);
    }

    #[test]
    fn l_lt_reconstructs_a() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().mul_mat(&ch.l().transpose());
        assert!(rec.approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_spd_system() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        assert!((&a.mul_vec(&x) - &b).norm_inf() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { index: 1 })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let ch = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            ch.solve(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let d_ch = Cholesky::factor(&a).unwrap().determinant();
        let d_lu = a.determinant().unwrap();
        assert!((d_ch - d_lu).abs() < 1e-12);
        assert!((d_ch - 8.0).abs() < 1e-12);
    }
}
