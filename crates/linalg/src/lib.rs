//! # nws-linalg — dense linear algebra substrate
//!
//! Small, self-contained dense linear algebra used by the `nws` workspace:
//! column vectors ([`Vector`]), row-major matrices ([`Matrix`]), direct
//! solvers (LU with partial pivoting, Cholesky), and the orthogonal
//! projections required by the gradient-projection solver in `nws-solver`.
//!
//! The crate is deliberately minimal: everything operates on `f64`, sizes are
//! dynamic, and the algorithms are the classical textbook ones. The problem
//! sizes in this workspace (tens to a few hundreds of links) make `O(n³)`
//! direct methods the right tool; no BLAS-style blocking is attempted.
//!
//! ## Quick example
//!
//! ```
//! use nws_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let b = Vector::from(vec![1.0, 2.0]);
//! let x = a.solve(&b).unwrap();
//! let r = &a.mul_vec(&x) - &b;
//! assert!(r.norm2() < 1e-12);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cholesky;
mod error;
mod matrix;
mod projection;
mod solve;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use projection::{project_out, projector_onto_nullspace};
pub use solve::Lu;
pub use vector::Vector;

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Absolute tolerance used by the crate when deciding whether a pivot or a
/// norm is "numerically zero".
pub const EPS: f64 = 1e-12;
