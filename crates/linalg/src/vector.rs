//! Dynamically-sized column vector of `f64`.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dynamically-sized column vector of `f64` values.
///
/// Arithmetic operators are implemented on references (`&a + &b`) to avoid
/// accidental clones; in-place variants (`+=`, `-=`, [`Vector::scale_mut`],
/// [`Vector::axpy`]) are provided for hot paths.
///
/// All binary operations panic on dimension mismatch — mixing vectors of
/// different lengths is a programming error, not a recoverable condition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a standard basis vector `e_i` of length `n` (1 at `i`, 0 elsewhere).
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = Self::zeros(n);
        v[i] = 1.0;
        v
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product `self · other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// L∞ norm (maximum absolute value); 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Sum of components.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Returns `self * s` as a new vector.
    pub fn scaled(&self, s: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Overwrites `self` with the components of `other` without
    /// reallocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &Vector) {
        assert_eq!(self.len(), other.len(), "copy_from: length mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Multiplies every component by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` kernel).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Component-wise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Largest component value; `None` for an empty vector.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::max)
    }

    /// Smallest component value; `None` for an empty vector.
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::min)
    }

    /// True iff every component is finite (no NaN / ±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns true if `self` and `other` agree to within `tol` in the L∞ norm.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector {
            data: self.data.iter().map(|x| -x).collect(),
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::filled(2, 1.5).as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(3, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "basis index")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut a = Vector::filled(3, 9.0);
        a.copy_from(&Vector::from(vec![1.0, 2.0, 3.0]));
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "copy_from: length mismatch")]
    fn copy_from_length_checked() {
        Vector::zeros(2).copy_from(&Vector::zeros(3));
    }

    #[test]
    fn dot_product() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_mismatch_panics() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn norm_inf_empty_is_zero() {
        assert_eq!(Vector::zeros(0).norm_inf(), 0.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        a += &b;
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a -= &b;
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale_mut(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
    }

    #[test]
    fn hadamard_product() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![2.0, 3.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 6.0, 12.0]);
    }

    #[test]
    fn min_max_sum() {
        let v = Vector::from(vec![2.0, -1.0, 5.0]);
        assert_eq!(v.max(), Some(5.0));
        assert_eq!(v.min(), Some(-1.0));
        assert_eq!(v.sum(), 6.0);
        assert_eq!(Vector::zeros(0).max(), None);
    }

    #[test]
    fn finiteness() {
        assert!(Vector::from(vec![1.0, 2.0]).is_finite());
        assert!(!Vector::from(vec![1.0, f64::NAN]).is_finite());
        assert!(!Vector::from(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![1.0 + 1e-10, 2.0 - 1e-10]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-11));
        assert!(!a.approx_eq(&Vector::zeros(3), 1.0));
    }

    #[test]
    fn from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn display_formatting() {
        let v = Vector::from(vec![1.0, -0.5]);
        assert_eq!(v.to_string(), "[1.000000, -0.500000]");
    }
}
