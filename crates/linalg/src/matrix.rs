//! Dynamically-sized row-major dense matrix of `f64`.

use crate::{LinalgError, Result, Vector};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major, dynamically-sized matrix of `f64`.
///
/// Indexing uses `(row, col)` tuples: `m[(i, j)]`. As with [`Vector`],
/// dimension mismatches in operators panic, while the factorization entry
/// points ([`Matrix::solve`], [`Matrix::inverse`], …) return [`Result`]s
/// because singularity is a data-dependent condition the caller must handle.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "row {i} has length {} != {ncols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &Vector) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// True iff the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "col {j} out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose `Aᵀ` as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.ncols()`.
    pub fn mul_vec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix–vector product `Aᵀ·x` without forming `Aᵀ`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.nrows()`.
    pub fn mul_vec_transposed(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.rows, "mul_vec_transposed: dimension mismatch");
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            for (j, a) in self.row(i).iter().enumerate() {
                out[j] += a * xi;
            }
        }
        out
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if `self.ncols() != rhs.nrows()`.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "mul_mat: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Solves `A·x = b` via LU factorization with partial pivoting.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        crate::Lu::factor(self)?.solve(b)
    }

    /// Computes the matrix inverse via LU factorization.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<Matrix> {
        crate::Lu::factor(self)?.inverse()
    }

    /// Determinant via LU factorization. Singular matrices report 0.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        match crate::Lu::factor(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Returns true if `self` and `other` agree entry-wise to within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// True iff the matrix equals its transpose to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }
}

/// `Display` renders each row on its own line with fixed precision; handy in
/// test failures and debug dumps.
impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_zeros() {
        let i = Matrix::identity(2);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(!z.is_square());
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_ragged_rows_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mat_vec_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = Vector::from(vec![1.0, 1.0]);
        assert_eq!(m.mul_vec(&x).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn transposed_mat_vec_matches_explicit_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let x = Vector::from(vec![2.0, -1.0]);
        let a = m.mul_vec_transposed(&x);
        let b = m.transpose().mul_vec(&x);
        assert!(a.approx_eq(&b, 1e-15));
    }

    #[test]
    fn mat_mat_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_mat(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).mul_mat(&a), a);
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Vector::from(vec![3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        assert!(x.approx_eq(&Vector::from(vec![0.8, 1.4]), 1e-12));
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.determinant().unwrap() + 2.0).abs() < 1e-12);
        assert!((Matrix::identity(4).determinant().unwrap() - 1.0).abs() < 1e-12);
        let sing = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(sing.determinant().unwrap(), 0.0);
    }

    #[test]
    fn determinant_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            m.determinant(),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        assert!(a.mul_mat(&inv).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn symmetry_detection() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]);
        assert!(!ns.is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::from_diagonal(&Vector::from(vec![2.0, 3.0]));
        assert_eq!(
            d.mul_vec(&Vector::from(vec![1.0, 1.0])).as_slice(),
            &[2.0, 3.0]
        );
    }

    #[test]
    fn operators_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 4.0);
        assert_eq!((&a - &b)[(1, 1)], 3.0);
        assert_eq!((&a * 2.0)[(0, 0)], 6.0);
        assert_eq!(a.norm_frobenius(), 5.0);
    }
}
