//! Error type for fallible linear-algebra operations.

use std::fmt;

/// Errors produced by `nws-linalg` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorization failed because the matrix is singular (or numerically
    /// indistinguishable from singular) at the given pivot index.
    Singular {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite (a non-positive diagonal entry was encountered).
    NotPositiveDefinite {
        /// Diagonal index at which positivity failed.
        index: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {op}: expected {expected}, found {found}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (at diagonal {index})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "dot",
            expected: 3,
            found: 2,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in dot: expected 3, found 2"
        );
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert_eq!(e.to_string(), "matrix must be square, got 2x3");
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 1 };
        assert_eq!(e.to_string(), "matrix is singular (zero pivot at index 1)");
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { index: 0 };
        assert_eq!(
            e.to_string(),
            "matrix is not positive definite (at diagonal 0)"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&LinalgError::Singular { pivot: 0 });
    }
}
