//! Orthogonal projections onto constraint null-spaces.
//!
//! The gradient-projection method in `nws-solver` repeatedly projects the
//! objective gradient onto the null-space of the active-constraint matrix
//! `A` (each row of `A` is the normal of one active constraint). This module
//! provides both the explicit projector matrix `P = I − Aᵀ(A·Aᵀ)⁻¹A` and a
//! matrix-free application of it to a single vector, which is what the solver
//! uses on its hot path.

use crate::{Cholesky, Matrix, Result, Vector};

/// Computes the explicit orthogonal projector `P = I − Aᵀ(A·Aᵀ)⁻¹·A` onto the
/// null-space of `a` (rows of `a` are constraint normals).
///
/// Requires the rows of `a` to be linearly independent so that `A·Aᵀ` is
/// positive definite.
///
/// # Errors
/// [`crate::LinalgError::NotPositiveDefinite`] when the rows of `a` are
/// linearly dependent (redundant active constraints).
pub fn projector_onto_nullspace(a: &Matrix) -> Result<Matrix> {
    let m = a.nrows();
    let n = a.ncols();
    if m == 0 {
        return Ok(Matrix::identity(n));
    }
    let aat = a.mul_mat(&a.transpose());
    let ch = Cholesky::factor(&aat)?;
    // Build Aᵀ(AAᵀ)⁻¹A column by column: column j of the product is
    // Aᵀ · solve(AAᵀ, A·e_j).
    let mut p = Matrix::identity(n);
    for j in 0..n {
        let aej = a.col(j);
        let w = ch.solve(&aej)?;
        let corr = a.mul_vec_transposed(&w);
        for i in 0..n {
            p[(i, j)] -= corr[i];
        }
    }
    Ok(p)
}

/// Projects `v` onto the null-space of `a` without forming the projector:
/// `v − Aᵀ(A·Aᵀ)⁻¹·A·v`.
///
/// # Errors
/// Same conditions as [`projector_onto_nullspace`].
pub fn project_out(a: &Matrix, v: &Vector) -> Result<Vector> {
    if a.nrows() == 0 {
        return Ok(v.clone());
    }
    let aat = a.mul_mat(&a.transpose());
    let ch = Cholesky::factor(&aat)?;
    let av = a.mul_vec(v);
    let w = ch.solve(&av)?;
    let corr = a.mul_vec_transposed(&w);
    Ok(v - &corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_constraints_is_identity() {
        let a = Matrix::zeros(0, 3);
        let p = projector_onto_nullspace(&a).unwrap();
        assert!(p.approx_eq(&Matrix::identity(3), 0.0));
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert!(project_out(&a, &v).unwrap().approx_eq(&v, 0.0));
    }

    #[test]
    fn projection_is_orthogonal_to_constraints() {
        // Single constraint normal (1,1,1): projection must have zero sum.
        let a = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let v = Vector::from(vec![3.0, 1.0, -1.0]);
        let pv = project_out(&a, &v).unwrap();
        assert!(pv.sum().abs() < 1e-12);
        // And it is the closest such point: v - pv is parallel to the normal.
        let diff = &v - &pv;
        let unit = 1.0 / 3.0_f64.sqrt();
        let normal = Vector::from(vec![unit, unit, unit]);
        let along = normal.scaled(diff.dot(&normal));
        assert!(diff.approx_eq(&along, 1e-12));
    }

    #[test]
    fn projector_is_idempotent_and_symmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0, 1.0], &[0.0, 1.0, 1.0, -1.0]]);
        let p = projector_onto_nullspace(&a).unwrap();
        assert!(p.mul_mat(&p).approx_eq(&p, 1e-10));
        assert!(p.is_symmetric(1e-10));
    }

    #[test]
    fn explicit_and_matrix_free_agree() {
        let a = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, -1.0]]);
        let p = projector_onto_nullspace(&a).unwrap();
        let v = Vector::from(vec![1.0, -2.0, 0.5]);
        let via_matrix = p.mul_vec(&v);
        let direct = project_out(&a, &v).unwrap();
        assert!(via_matrix.approx_eq(&direct, 1e-12));
    }

    #[test]
    fn vector_in_nullspace_is_fixed_point() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        let v = Vector::from(vec![1.0, -1.0, 4.0]); // A·v = 0
        let pv = project_out(&a, &v).unwrap();
        assert!(pv.approx_eq(&v, 1e-12));
    }

    #[test]
    fn dependent_rows_detected() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]);
        assert!(project_out(&a, &Vector::from(vec![1.0, 1.0])).is_err());
    }

    #[test]
    fn full_row_rank_square_constraints_project_to_zero() {
        // n independent constraints in n-space => null-space is {0}.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let pv = project_out(&a, &Vector::from(vec![5.0, -3.0])).unwrap();
        assert!(pv.norm_inf() < 1e-10);
    }
}
