//! Property-based tests for the linear-algebra substrate.

use nws_linalg::{Cholesky, Lu, Matrix, Vector};
use proptest::prelude::*;

/// Strategy producing a vector of `n` reasonable finite floats.
fn vec_of(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0..100.0f64, n)
}

/// Strategy producing a well-conditioned SPD matrix `M·Mᵀ + n·I` of size `n`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    vec_of(n * n).prop_map(move |data| {
        let m = Matrix::from_row_major(n, n, data);
        let mut spd = m.mul_mat(&m.transpose());
        // Diagonal shift keeps the spectrum away from zero. The entries of
        // M·Mᵀ are bounded by n·100², so a shift of n·100 keeps the condition
        // number manageable without hiding the off-diagonal structure.
        for i in 0..n {
            spd[(i, i)] += n as f64 * 100.0;
        }
        spd
    })
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec_of(8), b in vec_of(8)) {
        let (va, vb) = (Vector::from(a), Vector::from(b));
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality(a in vec_of(8), b in vec_of(8)) {
        let (va, vb) = (Vector::from(a), Vector::from(b));
        prop_assert!((&va + &vb).norm2() <= va.norm2() + vb.norm2() + 1e-9);
    }

    #[test]
    fn cauchy_schwarz(a in vec_of(6), b in vec_of(6)) {
        let (va, vb) = (Vector::from(a), Vector::from(b));
        prop_assert!(va.dot(&vb).abs() <= va.norm2() * vb.norm2() + 1e-9);
    }

    #[test]
    fn axpy_matches_operator_form(a in vec_of(5), b in vec_of(5), alpha in -10.0..10.0f64) {
        let va = Vector::from(a);
        let vb = Vector::from(b);
        let mut in_place = va.clone();
        in_place.axpy(alpha, &vb);
        let via_ops = &va + &vb.scaled(alpha);
        prop_assert!(in_place.approx_eq(&via_ops, 1e-9));
    }

    #[test]
    fn transpose_is_involutive(data in vec_of(12)) {
        let m = Matrix::from_row_major(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_vector(data in vec_of(9), x in vec_of(3)) {
        // (A·A)·x == A·(A·x)
        let a = Matrix::from_row_major(3, 3, data);
        let vx = Vector::from(x);
        let lhs = a.mul_mat(&a).mul_vec(&vx);
        let rhs = a.mul_vec(&a.mul_vec(&vx));
        prop_assert!(lhs.approx_eq(&rhs, 1e-6 * (1.0 + lhs.norm_inf())));
    }

    #[test]
    fn lu_solve_residual_small(m in spd_matrix(5), b in vec_of(5)) {
        let vb = Vector::from(b);
        let x = Lu::factor(&m).unwrap().solve(&vb).unwrap();
        let resid = (&m.mul_vec(&x) - &vb).norm_inf();
        prop_assert!(resid < 1e-6, "residual {resid}");
    }

    #[test]
    fn cholesky_matches_lu_on_spd(m in spd_matrix(4), b in vec_of(4)) {
        let vb = Vector::from(b);
        let x_lu = Lu::factor(&m).unwrap().solve(&vb).unwrap();
        let x_ch = Cholesky::factor(&m).unwrap().solve(&vb).unwrap();
        prop_assert!(x_lu.approx_eq(&x_ch, 1e-6 * (1.0 + x_lu.norm_inf())));
    }

    #[test]
    fn inverse_times_matrix_is_identity(m in spd_matrix(4)) {
        let inv = m.inverse().unwrap();
        prop_assert!(m.mul_mat(&inv).approx_eq(&Matrix::identity(4), 1e-6));
    }

    #[test]
    fn determinant_of_product(m in spd_matrix(3)) {
        // det(M·M) == det(M)² for our SPD samples.
        let d = m.determinant().unwrap();
        let d2 = m.mul_mat(&m).determinant().unwrap();
        prop_assert!((d2 - d * d).abs() <= 1e-6 * d.abs().max(1.0) * d.abs().max(1.0));
    }

    #[test]
    fn projection_removes_constraint_components(
        normal in vec_of(6).prop_filter("nonzero", |v| v.iter().any(|x| x.abs() > 1.0)),
        v in vec_of(6),
    ) {
        let a = Matrix::from_row_major(1, 6, normal);
        let pv = nws_linalg::project_out(&a, &Vector::from(v)).unwrap();
        let along = a.mul_vec(&pv);
        prop_assert!(along.norm_inf() < 1e-6 * (1.0 + pv.norm_inf()) * (1.0 + a.norm_frobenius()));
    }

    #[test]
    fn projection_is_contractive(
        normal in vec_of(6).prop_filter("nonzero", |v| v.iter().any(|x| x.abs() > 1.0)),
        v in vec_of(6),
    ) {
        let a = Matrix::from_row_major(1, 6, normal);
        let vv = Vector::from(v);
        let pv = nws_linalg::project_out(&a, &vv).unwrap();
        prop_assert!(pv.norm2() <= vv.norm2() + 1e-9);
    }
}
