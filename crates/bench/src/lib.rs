//! # nws-bench — experiment regenerators and performance benchmarks
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §3 for the
//! index) plus Criterion benchmarks of the substrates. Binaries print a
//! human-readable header followed by CSV series that can be plotted
//! directly.
//!
//! | binary              | regenerates                                         |
//! |---------------------|-----------------------------------------------------|
//! | `fig1`              | Figure 1 — the utility function `M(ρ)`              |
//! | `table1`            | Table I — optimal rates on GEANT for the JANET task |
//! | `fig2`              | Figure 2 — accuracy vs θ, optimum vs UK-links-only  |
//! | `convergence`       | §IV-D — convergence statistics over 200 instances   |
//! | `naive`             | §V-C — access-link-only capacity accounting         |
//! | `approx_ablation`   | §IV-B/V-B — exact vs approximate effective rate     |
//! | `maxmin`            | §III — sum-utility vs max–min objective             |
//! | `twophase`          | §II — joint optimum vs two-phase heuristic          |
//! | `reroute`           | §I — stale placement vs re-optimization after a cut |
//! | `crossnet`          | §V-C — the comparison repeated on Abilene           |
//! | `diurnal`           | §I — a synthetic day under monitoring policies      |
//! | `ablation_solver`   | §IV-D — Polak–Ribière / line-search / warm starts   |
//! | `multitask`         | §I — several tasks sharing one budget               |
//! | `convergence_trace` | §IV-D — objective-vs-iteration curves               |
//! | `topology_study`    | exploratory — advantage vs topology structure       |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

/// Prints a standard experiment banner and returns a timer for the footer.
pub fn banner(id: &str, what: &str) -> Instant {
    println!("=== {id}: {what}");
    println!(
        "=== reproduction of: Cantieni et al., \"Reformulating the Monitor Placement \
         Problem\" (CoNEXT 2006)"
    );
    println!();
    Instant::now()
}

/// Prints the standard experiment footer with elapsed wall time.
pub fn footer(start: Instant) {
    println!();
    println!("=== done in {:.2?}", start.elapsed());
}

/// Mean of a slice.
///
/// # Panics
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1); 0 for a single element.
///
/// # Panics
/// Panics on an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    if xs.len() == 1 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
