//! §IV-B / §V-B — validity of the linear effective-rate approximation.
//!
//! The optimizer works with `ρ ≈ Σ r·p` (eq. (7)) instead of the exact
//! union probability `ρ = 1 − Π(1−p)^r` (eq. (1)). The paper argues the
//! approximation is benign because optimal rates are ~0.01 and below and
//! each OD is observed by at most two monitors. This ablation quantifies
//! that: solve the JANET task under both models and compare the resulting
//! rates, objectives and per-OD effective rates.

use nws_bench::{banner, footer};
use nws_core::report::render_csv;
use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, PlacementConfig, RateModel};

fn main() {
    let t0 = banner(
        "approx_ablation",
        "exact vs approximate effective-rate model",
    );

    let task = janet_task();
    let approx = solve_placement(
        &task,
        &PlacementConfig {
            rate_model: RateModel::Approximate,
            ..Default::default()
        },
    )
    .expect("feasible");
    let exact = solve_placement(
        &task,
        &PlacementConfig {
            rate_model: RateModel::Exact,
            ..Default::default()
        },
    )
    .expect("feasible");

    println!(
        "objective: approx-model {:.6} | exact-model {:.6} | rel diff {:.2e}",
        approx.objective,
        exact.objective,
        (approx.objective - exact.objective).abs() / exact.objective
    );

    let max_rate_diff = approx
        .rates
        .iter()
        .zip(&exact.rates)
        .map(|(a, e)| (a - e).abs())
        .fold(0.0, f64::max);
    println!("max per-link rate difference between the two solutions: {max_rate_diff:.2e}");

    // Within the approx solution, how far is eq. (7) from eq. (1)?
    let mut rows = Vec::new();
    let mut worst_gap = 0.0f64;
    for (k, od) in task.ods().iter().enumerate() {
        let ra = approx.effective_rates_approx[k];
        let re = approx.effective_rates_exact[k];
        let gap = (ra - re) / re.max(1e-300);
        worst_gap = worst_gap.max(gap);
        rows.push(vec![od.size / 300.0, ra, re, gap]);
    }
    println!(
        "worst relative overestimate of eq.(7) vs eq.(1) across ODs: {:.3e}   \
         [paper: negligible at rates ~0.01]",
        worst_gap
    );
    println!();
    print!(
        "{}",
        render_csv(
            &["od_pkts_per_sec", "rho_approx", "rho_exact", "rel_gap"],
            &rows
        )
    );

    footer(t0);
}
