//! Micro-benchmark of `nws-store` WAL append throughput under the three
//! fsync policies (`always`, `every-8`, `never`).
//!
//! The payload is a representative journaled daemon command (~70 bytes of
//! JSON), so the numbers approximate what `nws serve --state-dir` pays per
//! state-changing request at each durability level. Every policy writes
//! through to the kernel on each append (SIGKILL loses nothing); the policy
//! only sets the fdatasync cadence, i.e. the power-loss window — which is
//! exactly what the throughput spread here prices.
//!
//! Dependency-free (`std::time::Instant` only); emits machine-readable JSON
//! (default `BENCH_wal.json`) with one object per policy so CI can extract
//! `appends_per_sec` per line. CI gates that `never` ≥ `always`: if paying
//! zero fsyncs is not at least as fast as an fsync per append, the
//! measurement (or the store) is broken.
//!
//! Flags: `--quick` (fewer appends — the CI smoke mode), `--out PATH`,
//! `--dir PATH` (scratch directory; default under the system temp dir).

use nws_bench::{banner, footer};
use nws_obs::Recorder;
use nws_store::{FsyncPolicy, Store, StoreOptions};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One policy's measured run.
struct PolicyResult {
    policy: &'static str,
    appends: u64,
    appended_bytes: u64,
    fsyncs: u64,
    wall_ms: f64,
    appends_per_sec: f64,
    mb_per_sec: f64,
}

/// A representative journaled command: what the daemon appends for a
/// `update_demand` request.
fn payload(i: u64) -> String {
    format!(
        "{{\"cmd\": \"update_demand\", \"od\": \"JANET-NL\", \"size\": {}}}",
        9_000_000 + i
    )
}

/// Appends `count` records under `policy` into a fresh subdirectory of
/// `scratch` and reports measured throughput.
fn run_policy(scratch: &Path, policy: FsyncPolicy, count: u64) -> PolicyResult {
    let dir = scratch.join(policy.label().replace('-', "_"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    let recorder = Recorder::disabled();
    let (mut store, recovery) =
        Store::open(&dir, StoreOptions { fsync: policy }, &recorder).expect("open store");
    assert!(recovery.records.is_empty(), "scratch dir starts empty");

    let t0 = Instant::now();
    for i in 0..count {
        store.append(&payload(i)).expect("append");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = store.wal_stats();
    drop(store);
    let wall_s = (wall_ms / 1e3).max(1e-9);
    PolicyResult {
        policy: match policy {
            FsyncPolicy::Always => "always",
            FsyncPolicy::EveryN(_) => "every-8",
            FsyncPolicy::Never => "never",
        },
        appends: stats.appends,
        appended_bytes: stats.appended_bytes,
        fsyncs: stats.fsyncs,
        wall_ms,
        appends_per_sec: stats.appends as f64 / wall_s,
        mb_per_sec: stats.appended_bytes as f64 / 1e6 / wall_s,
    }
}

fn render_json(quick: bool, results: &[PolicyResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"wal_bench\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"policies\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"appends\": {}, \"appended_bytes\": {}, \
             \"fsyncs\": {}, \"wall_ms\": {:.3}, \"appends_per_sec\": {:.1}, \
             \"mb_per_sec\": {:.3}}}{}\n",
            r.policy,
            r.appends,
            r.appended_bytes,
            r.fsyncs,
            r.wall_ms,
            r.appends_per_sec,
            r.mb_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_wal.json".to_string());
    let scratch: PathBuf = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1).cloned())
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("nws_wal_bench_{}", std::process::id()))
        });

    let t0 = banner(
        "wal_bench",
        "nws-store WAL append throughput across fsync policies",
    );

    // An fsync per append is orders of magnitude slower than a buffered
    // write, so `always` gets proportionally fewer appends — enough for a
    // stable rate without stalling CI on slow disks.
    let cases: [(FsyncPolicy, u64); 3] = if quick {
        [
            (FsyncPolicy::Always, 200),
            (FsyncPolicy::EveryN(8), 1_000),
            (FsyncPolicy::Never, 2_000),
        ]
    } else {
        [
            (FsyncPolicy::Always, 2_000),
            (FsyncPolicy::EveryN(8), 10_000),
            (FsyncPolicy::Never, 50_000),
        ]
    };

    println!(
        "{:<10} {:>9} {:>9} {:>12} {:>14} {:>10}",
        "policy", "appends", "fsyncs", "wall ms", "appends/s", "MB/s"
    );
    let mut results = Vec::new();
    for (policy, count) in cases {
        let r = run_policy(&scratch, policy, count);
        println!(
            "{:<10} {:>9} {:>9} {:>12.3} {:>14.1} {:>10.3}",
            r.policy, r.appends, r.fsyncs, r.wall_ms, r.appends_per_sec, r.mb_per_sec
        );
        results.push(r);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let json = render_json(quick, &results);
    std::fs::write(&out_path, &json).expect("write JSON report");
    println!();
    println!("wrote {out_path}");
    footer(t0);
}
