//! Beyond §V-C — how the method's advantage varies across topology shapes.
//!
//! The paper argues its benefit stems from a general property of backbone
//! design: small OD pairs traverse some link where they meet little cross
//! traffic. This study measures that claim across *families* of random
//! topologies (ring-with-chords of varying density, geometric graphs),
//! comparing the network-wide optimum against the ingress-links-only
//! restriction on each instance, and correlating the advantage with a
//! structural statistic: the load ratio between each small OD's quietest
//! path link and its ingress link.

use nws_bench::{banner, footer, mean, std_dev};
use nws_core::report::render_csv;
use nws_core::{solve_placement, MeasurementTask, PlacementConfig};
use nws_routing::{OdPair, Router};
use nws_topo::random::{gabriel_like, ring_with_chords};
use nws_topo::{LinkId, Topology};
use nws_traffic::demand::DemandMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Instance {
    task: MeasurementTask,
    ingress_links: Vec<LinkId>,
}

/// Builds an instance on `topo`: the max-degree node is the ingress; every
/// reachable node is tracked with a heavy-tailed size.
fn build_instance(topo: Topology, seed: u64) -> Option<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ingress = topo
        .node_ids()
        .max_by_key(|&n| topo.out_links(n).count())
        .expect("nodes exist");
    let router = Router::new(&topo);
    let mut tracked = Vec::new();
    for (rank, dst) in topo.node_ids().filter(|&d| d != ingress).enumerate() {
        if router.path(OdPair::new(ingress, dst)).is_none() {
            continue;
        }
        // Heavy-tailed sizes: a few elephants, many mice.
        let size = 30_000.0 * 300.0 / ((rank + 1) as f64).powf(1.5) * rng.random_range(0.5..1.5);
        tracked.push((dst, size.max(600.0)));
    }
    drop(router);
    if tracked.len() < 3 {
        return None;
    }
    let ingress_links: Vec<LinkId> = topo
        .out_links(ingress)
        .chain(topo.in_links(ingress))
        .filter(|&l| topo.link(l).monitorable())
        .collect();
    let bg =
        DemandMatrix::gravity_capacity_weighted(&topo, 3e8, 0.5, seed ^ 0xAB).link_loads(&topo);
    let total: f64 = tracked.iter().map(|&(_, s)| s).sum();
    let mut b = MeasurementTask::builder(topo);
    for (dst, size) in tracked {
        let od = OdPair::new(ingress, dst);
        b = b.track(format!("F{}", dst.index()), od, size);
    }
    let task = b.background_loads(&bg).theta(total * 0.002).build().ok()?;
    Some(Instance {
        task,
        ingress_links,
    })
}

/// Structural statistic: over the smaller half of the OD pairs, the mean of
/// `load(ingress link) / load(quietest path link)` — large values mean the
/// topology offers quiet tails, the property the paper banks on.
fn quiet_tail_ratio(task: &MeasurementTask) -> f64 {
    let mut ods: Vec<usize> = (0..task.ods().len()).collect();
    ods.sort_by(|&a, &b| {
        task.ods()[a]
            .size
            .partial_cmp(&task.ods()[b].size)
            .expect("finite")
    });
    let small = &ods[..ods.len() / 2];
    let ratios: Vec<f64> = small
        .iter()
        .filter_map(|&k| {
            let links = task.routing().links_of_od(k);
            let loads: Vec<f64> = links
                .iter()
                .map(|&l| task.link_loads()[l.index()])
                .collect();
            let quiet = loads.iter().cloned().fold(f64::INFINITY, f64::min);
            let first = *loads.first()?;
            (quiet > 0.0).then_some(first / quiet)
        })
        .collect();
    if ratios.is_empty() {
        1.0
    } else {
        mean(&ratios)
    }
}

fn main() {
    let t0 = banner(
        "topology_study",
        "network-wide advantage vs topology structure across random families",
    );

    let cfg = PlacementConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>12}",
        "family", "seed", "tail_ratio", "adv_worstOD", "adv_objective"
    );
    let mut advantages = Vec::new();
    let mut ratios = Vec::new();

    let families: Vec<(String, Topology)> = (0..6)
        .map(|s| (format!("ring_sparse/{s}"), ring_with_chords(16, 2, s)))
        .chain((0..6).map(|s| (format!("ring_dense/{s}"), ring_with_chords(16, 14, s))))
        .chain((0..6).map(|s| (format!("geometric/{s}"), gabriel_like(16, 0.3, s))))
        .collect();

    for (label, topo) in families {
        let Some(inst) = build_instance(topo, 7) else {
            continue;
        };
        let full = solve_placement(&inst.task, &cfg).expect("feasible");
        let Ok(restricted) = inst.task.restricted_to(&inst.ingress_links) else {
            continue;
        };
        let ingress = solve_placement(&restricted, &cfg).expect("feasible");

        let worst = |u: &[f64]| u.iter().cloned().fold(f64::INFINITY, f64::min);
        let adv_worst = worst(&full.utilities) - worst(&ingress.utilities);
        let adv_obj = full.objective - ingress.objective;
        let ratio = quiet_tail_ratio(&inst.task);
        println!(
            "{label:<24} {:>6} {ratio:>12.2} {adv_worst:>12.4} {adv_obj:>12.4}",
            7
        );
        rows.push(vec![ratio, adv_worst, adv_obj]);
        advantages.push(adv_worst);
        ratios.push(ratio);
    }

    // Rank correlation between quiet-tail structure and the advantage.
    let corr = pearson(&ratios, &advantages);
    println!();
    println!(
        "mean worst-OD advantage: {:.4} (std {:.4}); correlation with quiet-tail \
         ratio: {corr:.2}",
        mean(&advantages),
        std_dev(&advantages)
    );
    println!(
        "The objective advantage is nonnegative by construction (the restriction \
         shrinks the feasible set); the worst-OD advantage tracks the quiet-tail \
         ratio — the structural property §V-C credits."
    );
    println!();
    print!(
        "{}",
        render_csv(&["tail_ratio", "adv_worst_od", "adv_objective"], &rows)
    );

    footer(t0);
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let (mx, my) = (mean(x), mean(y));
    let cov: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - mx) * (b - my))
        .sum::<f64>()
        / x.len() as f64;
    let (sx, sy) = (std_dev(x), std_dev(y));
    if sx == 0.0 || sy == 0.0 {
        0.0
    } else {
        cov / (sx * sy) * x.len() as f64 / (x.len() as f64 - 1.0)
    }
}
