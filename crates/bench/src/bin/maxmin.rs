//! §III — sum-of-utilities vs the max–min alternative objective.
//!
//! The paper chooses `max Σ M(ρ_k)` and discusses `max min_k M(ρ_k)` as the
//! fairness-oriented alternative it leaves to future work (non-differentiable
//! as stated; we smooth it with a soft-min homotopy). This experiment
//! quantifies the trade: max–min raises the worst-served OD pair at the
//! cost of total utility, and shifts capacity toward the links carrying
//! small OD pairs — the behaviour §III predicts.

use nws_bench::{banner, footer};
use nws_core::maxmin::solve_maxmin;
use nws_core::report::render_csv;
use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, PlacementConfig};
use nws_solver::SolverOptions;

fn main() {
    let t0 = banner("maxmin", "sum-of-utilities vs max-min fairness objective");

    let task = janet_task();
    let sum = solve_placement(&task, &PlacementConfig::default()).expect("feasible");
    let mm =
        solve_maxmin(&task, SolverOptions::default(), &[50.0, 200.0, 1000.0]).expect("feasible");

    let min = |u: &[f64]| u.iter().copied().fold(f64::INFINITY, f64::min);
    let max = |u: &[f64]| u.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    println!(
        "sum-objective : total {:.4} | worst OD {:.4} | best OD {:.4}",
        sum.utilities.iter().sum::<f64>(),
        min(&sum.utilities),
        max(&sum.utilities)
    );
    println!(
        "max-min       : total {:.4} | worst OD {:.4} | best OD {:.4}  (beta -> {})",
        mm.utilities.iter().sum::<f64>(),
        mm.min_utility,
        max(&mm.utilities),
        mm.final_beta
    );
    println!(
        "fairness gain on worst OD: {:+.4}; total-utility cost: {:+.4}",
        mm.min_utility - min(&sum.utilities),
        mm.utilities.iter().sum::<f64>() - sum.utilities.iter().sum::<f64>()
    );
    println!();

    let rows: Vec<Vec<f64>> = task
        .ods()
        .iter()
        .enumerate()
        .map(|(k, od)| vec![od.size / 300.0, sum.utilities[k], mm.utilities[k]])
        .collect();
    print!(
        "{}",
        render_csv(&["od_pkts_per_sec", "sum_utility", "maxmin_utility"], &rows)
    );

    footer(t0);
}
