//! §V-C — access-link-only monitoring vs the network-wide optimum.
//!
//! The first naïve alternative: monitor only the JANET access link. Every
//! sampled packet is then useful (no cross traffic), but tracking the
//! smallest OD pair (JANET-LU) to the optimum's quality requires sampling
//! the whole access link at that OD's effective rate (~1 %), which the
//! paper computes as 173 798 sampled packets per interval — about 70 % more
//! capacity than the θ = 100 000 the optimum needs.

use nws_bench::{banner, footer};
use nws_core::baseline::access_link_only;
use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, PlacementConfig};
use nws_topo::janet_access_link;

fn main() {
    let t0 = banner("naive", "access-link-only monitoring capacity accounting");

    let task = janet_task();
    let opt = solve_placement(&task, &PlacementConfig::default()).expect("feasible");

    // The binding requirement for a single shared monitor is the *highest*
    // effective rate in the optimum — the small OD pairs (JANET-LU) need
    // ~1 % sampling to be tracked accurately, so the access link would have
    // to sample everything at that rate.
    let (binding_k, binding_rho) = opt
        .effective_rates_approx
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite rates"))
        .expect("non-empty OD set");
    println!(
        "optimum: highest required effective rate is {:.5} for {} (the smallest pairs) \
         using theta = {}",
        binding_rho,
        task.ods()[binding_k].name,
        task.theta()
    );

    let access = janet_access_link(task.topology());
    let baseline = access_link_only(&task, access).expect("access link loaded");
    println!(
        "access-link-only at the same theta: uniform effective rate {:.5} for every OD",
        baseline.rate
    );

    let needed = baseline.capacity_for_rho(&task, *binding_rho);
    println!();
    println!(
        "capacity for access-link-only to give {} the same rate: {:.0} sampled pkts/interval",
        task.ods()[binding_k].name,
        needed
    );
    println!(
        "overhead vs optimum: {:.1}% more capacity   [paper: ~70% (173,798 vs 100,000)]",
        100.0 * (needed / task.theta() - 1.0)
    );

    footer(t0);
}
