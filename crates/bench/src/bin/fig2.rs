//! Figure 2 — measurement accuracy vs capacity θ, network-wide optimum vs
//! UK-links-only.
//!
//! The paper's comparison of §V-C: restricting the candidate monitors to the
//! six UK links balances load over the ingress PoP but pays dearly on small
//! OD pairs, because the UK links are heavily loaded and a high sampling
//! rate there burns capacity on cross traffic. Six series are printed:
//! average / worst / best OD accuracy for both monitor sets, over a sweep
//! of θ.

use nws_bench::{banner, footer};
use nws_core::report::render_csv;
use nws_core::scenarios::{janet_task_with, uk_links, BACKGROUND_SEED};
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};

fn main() {
    let t0 = banner(
        "fig2",
        "accuracy vs theta: full optimization vs UK-links-only",
    );

    let thetas = [
        5_000.0,
        10_000.0,
        20_000.0,
        50_000.0,
        100_000.0,
        200_000.0,
        500_000.0,
        1_000_000.0,
    ];
    let runs = 20;
    let cfg = PlacementConfig::default();

    let mut rows = Vec::new();
    for &theta in &thetas {
        let task = janet_task_with(theta, BACKGROUND_SEED).expect("valid theta");
        let full = solve_placement(&task, &cfg).expect("full problem feasible");
        let full_acc = summarize(&evaluate_accuracy(&task, &full, runs, 42));

        let restricted = task
            .restricted_to(&uk_links(task.topology()))
            .expect("UK restriction non-empty");
        let uk = solve_placement(&restricted, &cfg).expect("UK problem feasible");
        let uk_acc = summarize(&evaluate_accuracy(&restricted, &uk, runs, 42));

        println!(
            "theta {theta:>9}: full avg {:.4} worst {:.4} | UK-only avg {:.4} worst {:+.4}",
            full_acc.mean, full_acc.worst, uk_acc.mean, uk_acc.worst
        );
        rows.push(vec![
            theta,
            full_acc.mean,
            full_acc.worst,
            full_acc.best,
            uk_acc.mean,
            uk_acc.worst,
            uk_acc.best,
        ]);
    }

    println!();
    print!(
        "{}",
        render_csv(
            &[
                "theta",
                "full_avg",
                "full_worst",
                "full_best",
                "uk_avg",
                "uk_worst",
                "uk_best",
            ],
            &rows,
        )
    );

    footer(t0);
}
