//! §IV-D visualized — the objective's convergence trajectory.
//!
//! The paper describes the search qualitatively (zigzag hazards, bound hits,
//! multiplier releases). This experiment records the objective value at
//! every iteration of the JANET solve, with and without Polak–Ribière
//! conjugation, producing the convergence-curve series the discussion
//! implies. Gradient projection with exact line searches is monotone
//! ascent, so both curves are nondecreasing; the difference is how fast
//! they close the gap to the certified optimum.

use nws_bench::{banner, footer};
use nws_core::report::render_csv;
use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, PlacementConfig};
use nws_solver::SolverOptions;

fn main() {
    let t0 = banner("convergence_trace", "objective vs iteration, PR on/off");

    let task = janet_task();
    let run = |polak_ribiere: bool| {
        let cfg = PlacementConfig {
            solver: SolverOptions {
                record_objective: true,
                polak_ribiere,
                ..SolverOptions::default()
            },
            ..PlacementConfig::default()
        };
        solve_placement(&task, &cfg).expect("feasible")
    };
    let with_pr = run(true);
    let without_pr = run(false);

    println!(
        "with Polak-Ribiere   : {} iterations, certified = {}, final objective {:.6}",
        with_pr.diagnostics.iterations, with_pr.kkt_verified, with_pr.objective
    );
    println!(
        "without Polak-Ribiere: {} iterations, certified = {}, final objective {:.6}",
        without_pr.diagnostics.iterations, without_pr.kkt_verified, without_pr.objective
    );
    let optimum = with_pr.objective.max(without_pr.objective);
    println!();

    // CSV: iteration, gap-to-optimum for both variants (log-plottable).
    let a = &with_pr.objective_trajectory;
    let b = &without_pr.objective_trajectory;
    let len = a.len().max(b.len());
    let rows: Vec<Vec<f64>> = (0..len)
        .step_by(1 + len / 400) // cap the series at ~400 points
        .map(|i| {
            let gap = |t: &[f64]| {
                let v = t.get(i).copied().unwrap_or(*t.last().expect("non-empty"));
                (optimum - v).max(1e-16)
            };
            vec![i as f64, gap(a), gap(b)]
        })
        .collect();
    print!(
        "{}",
        render_csv(&["iteration", "gap_with_pr", "gap_without_pr"], &rows)
    );

    footer(t0);
}
