//! Micro-benchmark of the objective-evaluation engine: serial vs pooled
//! parallel `value`/`gradient`/`curvature_along`, the fused single-pass
//! kernel vs the three separate kernels, plus solver end-to-end timings, on
//! GEANT, Abilene, and a ~500-node random topology.
//!
//! Dependency-free (`std::time::Instant` only); emits machine-readable JSON
//! (default `BENCH_eval.json`) that `scripts/check_bench.py` validates and
//! gates in CI. The parallel variants go through the production
//! `with_parallel` path — persistent worker pool, nnz cutoff, core-count
//! cap — so on a single-core box every variant resolves to the serial
//! kernels and the speedup curve sits at ~1.0 by design (the engine never
//! pays for parallelism the machine cannot deliver); `available_cores` in
//! the JSON says which regime the numbers were taken in. The fused-kernel
//! section is meaningful on any core count.
//!
//! Flags: `--quick` (smaller instances, fewer reps — the CI smoke mode),
//! `--out PATH`.

use nws_bench::{banner, footer};
use nws_core::scenarios::{abilene_task, janet_task};
use nws_core::{
    solve_placement, MeasurementTask, ParallelConfig, PlacementConfig, PlacementObjective,
    RateModel, ReducedIndex, SreUtility,
};
use nws_linalg::Vector;
use nws_obs::Recorder;
use nws_routing::{OdPair, Router};
use nws_solver::Objective;
use nws_topo::random::ring_with_chords;
use std::hint::black_box;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct EvalCase {
    name: String,
    model: RateModel,
    objective_variants: Vec<PlacementObjective>, // one per entry of THREADS
    point: Vector,
}

struct EvalResult {
    name: String,
    model: &'static str,
    num_ods: usize,
    nnz: usize,
    dim: usize,
    value_ms: Vec<f64>,
    gradient_ms: Vec<f64>,
    curvature_ms: Vec<f64>,
}

struct FusedResult {
    name: String,
    model: &'static str,
    /// One entry per `THREADS` variant: the three separate kernels
    /// (value + gradient + curvature) back to back.
    separate_ms: Vec<f64>,
    /// Same quantities via one `eval_fused` sweep.
    fused_ms: Vec<f64>,
}

struct SolverResult {
    name: String,
    num_ods: usize,
    serial_ms: f64,
    parallel_ms: f64,
    parallel_threads: usize,
    iterations: usize,
    objective_rel_diff: f64,
}

struct ObsResult {
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_ratio: f64,
}

/// Median wall time of `reps` calls to `f`, in milliseconds (one warmup).
fn time_median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// A low-rate evaluation point with some per-coordinate variation.
fn eval_point(dim: usize) -> Vector {
    (0..dim).map(|v| 1e-3 * (1.0 + (v % 7) as f64)).collect()
}

fn task_case(name: &str, task: &MeasurementTask, model: RateModel) -> EvalCase {
    let idx = ReducedIndex::new(task);
    let objective_variants = THREADS
        .iter()
        .map(|&t| {
            PlacementObjective::new(task, &idx, model).with_parallel(ParallelConfig {
                threads: t,
                min_ods_per_thread: 1,
                ..ParallelConfig::default()
            })
        })
        .collect();
    EvalCase {
        name: name.to_string(),
        model,
        objective_variants,
        point: eval_point(idx.dim()),
    }
}

/// Builds the large synthetic eval case directly from shortest-path rows on
/// a ring-with-chords topology: every node is a source tracking `dsts_per_src`
/// destinations, sizes heavy-tailed by OD rank. Bypassing `MeasurementTask`
/// keeps construction linear in nnz (no dense routing matrix), which is what
/// lets the case reach hundreds of thousands of entries.
type ObjectiveParts = (Vec<SreUtility>, Vec<f64>, Vec<Vec<(usize, f64)>>, usize);

/// The raw (utilities, weights, routing rows, dim) of the synthetic case,
/// so several objectives can be built over identical data.
fn random_parts(n: usize, chords: usize, dsts_per_src: usize) -> ObjectiveParts {
    let topo = ring_with_chords(n, chords, 42);
    let dim = topo.num_links();
    let router = Router::new(&topo);
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut utilities = Vec::new();
    for src in topo.node_ids() {
        for j in 1..=dsts_per_src {
            // Deterministic destination spread around the ring.
            let dst_index = (src.index() + j * (n / (dsts_per_src + 1)).max(1) + j) % n;
            if dst_index == src.index() {
                continue;
            }
            let dst = topo
                .node_ids()
                .nth(dst_index)
                .expect("index within node count");
            let fractions = router.ecmp_fractions(OdPair::new(src, dst));
            if fractions.is_empty() {
                continue;
            }
            rows.push(fractions.into_iter().map(|(l, f)| (l.index(), f)).collect());
            // Heavy-tailed sizes: a few elephants, many mice.
            let rank = rows.len();
            let size = (9_000_000.0 / (rank as f64).powf(1.2)).max(600.0);
            utilities.push(SreUtility::new(1.0 / size));
        }
    }
    let weights = vec![1.0; rows.len()];
    (utilities, weights, rows, dim)
}

fn random_case(n: usize, chords: usize, dsts_per_src: usize, model: RateModel) -> EvalCase {
    let (utilities, weights, rows, dim) = random_parts(n, chords, dsts_per_src);
    let objective_variants = THREADS
        .iter()
        .map(|&t| {
            PlacementObjective::from_parts(
                utilities.clone(),
                weights.clone(),
                rows.clone(),
                model,
                dim,
            )
            .with_parallel(ParallelConfig {
                threads: t,
                min_ods_per_thread: 1,
                ..ParallelConfig::default()
            })
        })
        .collect();
    EvalCase {
        name: format!("random{n}"),
        model,
        objective_variants,
        point: eval_point(dim),
    }
}

fn run_eval_case(case: &EvalCase, reps: usize) -> EvalResult {
    let serial = &case.objective_variants[0];
    let (num_ods, nnz, dim) = (serial.num_ods(), serial.nnz(), serial.dim());
    let p = &case.point;
    let s: Vector = (0..dim)
        .map(|v| if v % 2 == 0 { 1.0 } else { -0.5 })
        .collect();

    let mut value_ms = Vec::new();
    let mut gradient_ms = Vec::new();
    let mut curvature_ms = Vec::new();
    for obj in &case.objective_variants {
        value_ms.push(time_median_ms(reps, || {
            black_box(obj.value(black_box(p)));
        }));
        let mut g = Vector::zeros(dim);
        gradient_ms.push(time_median_ms(reps, || {
            obj.gradient_into(black_box(p), &mut g);
            black_box(&g);
        }));
        curvature_ms.push(time_median_ms(reps, || {
            black_box(obj.curvature_along(black_box(p), black_box(&s)));
        }));
    }
    EvalResult {
        name: case.name.clone(),
        model: match case.model {
            RateModel::Approximate => "approximate",
            RateModel::Exact => "exact",
        },
        num_ods,
        nnz,
        dim,
        value_ms,
        gradient_ms,
        curvature_ms,
    }
}

/// Times the fused single-pass kernel (value + φ' + φ'' + gradient in one
/// CSR sweep) against the three separate kernels producing the same
/// quantities, per thread variant. `fusion_gain = separate_ms / fused_ms`
/// is the memory-traffic win and is meaningful even on one core.
fn run_fused_case(case: &EvalCase, reps: usize) -> FusedResult {
    let dim = case.objective_variants[0].dim();
    let p = &case.point;
    let s: Vector = (0..dim)
        .map(|v| if v % 2 == 0 { 1.0 } else { -0.5 })
        .collect();
    let mut separate_ms = Vec::new();
    let mut fused_ms = Vec::new();
    for obj in &case.objective_variants {
        let mut g = Vector::zeros(dim);
        separate_ms.push(time_median_ms(reps, || {
            black_box(obj.value(black_box(p)));
            obj.gradient_into(black_box(p), &mut g);
            black_box(&g);
            black_box(obj.curvature_along(black_box(p), black_box(&s)));
        }));
        fused_ms.push(time_median_ms(reps, || {
            black_box(obj.eval_fused(black_box(p), Some(black_box(&s)), Some(&mut g)));
            black_box(&g);
        }));
    }
    FusedResult {
        name: case.name.clone(),
        model: match case.model {
            RateModel::Approximate => "approximate",
            RateModel::Exact => "exact",
        },
        separate_ms,
        fused_ms,
    }
}

/// Random-topology measurement task for the solver end-to-end case: the
/// max-degree node tracks every reachable destination.
fn random_task(n: usize, chords: usize) -> MeasurementTask {
    let topo = ring_with_chords(n, chords, 42);
    let ingress = topo
        .node_ids()
        .max_by_key(|&v| topo.out_links(v).count())
        .expect("nodes exist");
    let router = Router::new(&topo);
    let mut tracked = Vec::new();
    for (rank, dst) in topo.node_ids().filter(|&d| d != ingress).enumerate() {
        if router.path(OdPair::new(ingress, dst)).is_none() {
            continue;
        }
        let size = (9_000_000.0 / ((rank + 1) as f64).powf(1.2)).max(600.0);
        tracked.push((dst, size));
    }
    drop(router);
    let bg = nws_traffic::demand::DemandMatrix::gravity_capacity_weighted(&topo, 3e8, 0.5, 7)
        .link_loads(&topo);
    let total: f64 = tracked.iter().map(|&(_, s)| s).sum();
    let mut b = MeasurementTask::builder(topo);
    for (dst, size) in tracked {
        b = b.track(format!("F{}", dst.index()), OdPair::new(ingress, dst), size);
    }
    b.background_loads(&bg)
        .theta(total * 0.002)
        .build()
        .expect("synthetic task is valid")
}

fn run_solver_case(
    name: &str,
    task: &MeasurementTask,
    max_iterations: usize,
    parallel_threads: usize,
) -> SolverResult {
    let mut config = PlacementConfig::default();
    config.solver.max_iterations = max_iterations;
    let t0 = Instant::now();
    let serial = solve_placement(task, &config).expect("solve succeeds");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    config.parallel = ParallelConfig {
        threads: parallel_threads,
        min_ods_per_thread: 1,
        ..ParallelConfig::default()
    };
    let t1 = Instant::now();
    let parallel = solve_placement(task, &config).expect("solve succeeds");
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let scale = serial.objective.abs().max(1.0);
    SolverResult {
        name: name.to_string(),
        num_ods: task.ods().len(),
        serial_ms,
        parallel_ms,
        parallel_threads,
        iterations: serial.diagnostics.iterations,
        objective_rel_diff: (serial.objective - parallel.objective).abs() / scale,
    }
}

/// Measures recorder overhead on the evaluation hot path: the same serial
/// objective (identical data) with the default no-op sink vs an enabled
/// `nws-obs` recorder. Run on the large random case — the scale the engine
/// targets; on toy instances the fixed per-call counter bump dwarfs the
/// sub-microsecond gradient itself. Samples interleave the two objectives
/// (so frequency/thermal drift hits both equally) and each sample times a
/// batch of gradient evaluations to stay above timer noise. CI gates
/// `overhead_ratio` at 1.05.
fn run_obs_overhead(
    disabled: &PlacementObjective,
    enabled: &PlacementObjective,
    reps: usize,
) -> ObsResult {
    const BATCH: usize = 8;
    let dim = disabled.dim();
    let p = eval_point(dim);
    let mut g = Vector::zeros(dim);
    let mut sample = |obj: &PlacementObjective| {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            obj.gradient_into(black_box(&p), &mut g);
            black_box(&g);
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    sample(disabled); // warmup
    sample(enabled);
    let mut d_samples = Vec::with_capacity(reps);
    let mut e_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        d_samples.push(sample(disabled));
        e_samples.push(sample(enabled));
    }
    d_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    e_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let disabled_ms = d_samples[d_samples.len() / 2];
    let enabled_ms = e_samples[e_samples.len() / 2];
    ObsResult {
        disabled_ms,
        enabled_ms,
        overhead_ratio: enabled_ms / disabled_ms,
    }
}

fn json_f64_list(xs: &[f64]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", parts.join(", "))
}

fn render_json(
    quick: bool,
    evals: &[EvalResult],
    fused: &[FusedResult],
    solvers: &[SolverResult],
    obs: &ObsResult,
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"eval_bench\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"available_cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"threads\": [{}],\n",
        THREADS.map(|t| t.to_string()).join(", ")
    ));
    out.push_str(&format!(
        "  \"obs\": {{\"disabled_ms\": {:.6}, \"enabled_ms\": {:.6}, \"overhead_ratio\": {:.6}}},\n",
        obs.disabled_ms, obs.enabled_ms, obs.overhead_ratio
    ));
    out.push_str("  \"eval_cases\": [\n");
    for (i, e) in evals.iter().enumerate() {
        let speedup: Vec<f64> = e
            .gradient_ms
            .iter()
            .map(|&ms| e.gradient_ms[0] / ms)
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"num_ods\": {}, \"nnz\": {}, \
             \"dim\": {},\n     \"value_ms\": {}, \"gradient_ms\": {}, \"curvature_ms\": {},\n     \
             \"gradient_speedup\": {}}}{}\n",
            e.name,
            e.model,
            e.num_ods,
            e.nnz,
            e.dim,
            json_f64_list(&e.value_ms),
            json_f64_list(&e.gradient_ms),
            json_f64_list(&e.curvature_ms),
            json_f64_list(&speedup),
            if i + 1 < evals.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"fused\": [\n");
    for (i, f) in fused.iter().enumerate() {
        let gain: Vec<f64> = f
            .separate_ms
            .iter()
            .zip(&f.fused_ms)
            .map(|(&sep, &fus)| sep / fus)
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"separate_ms\": {}, \
             \"fused_ms\": {}, \"fusion_gain\": {}}}{}\n",
            f.name,
            f.model,
            json_f64_list(&f.separate_ms),
            json_f64_list(&f.fused_ms),
            json_f64_list(&gain),
            if i + 1 < fused.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"solver_cases\": [\n");
    for (i, s) in solvers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"num_ods\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.4}, \"parallel_threads\": {}, \
             \"iterations\": {}, \"objective_rel_diff\": {:.3e}}}{}\n",
            s.name,
            s.num_ods,
            s.serial_ms,
            s.parallel_ms,
            s.serial_ms / s.parallel_ms,
            s.parallel_threads,
            s.iterations,
            s.objective_rel_diff,
            if i + 1 < solvers.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_eval.json".to_string());

    let t0 = banner(
        "eval_bench",
        "objective-evaluation engine: serial vs parallel, plus solver end-to-end",
    );
    let reps = if quick { 3 } else { 7 };
    let (rand_n, rand_chords, dsts) = if quick {
        (160, 320, 12)
    } else {
        (500, 1000, 40)
    };

    let janet = janet_task();
    let abilene = abilene_task(40_000.0, 7).expect("valid theta");

    let mut eval_cases = vec![
        task_case("geant_janet", &janet, RateModel::Approximate),
        task_case("abilene", &abilene, RateModel::Approximate),
        random_case(rand_n, rand_chords, dsts, RateModel::Approximate),
        random_case(rand_n, rand_chords, dsts, RateModel::Exact),
    ];

    println!(
        "{:<16} {:<12} {:>8} {:>9} | gradient ms @ threads {:?}",
        "case", "model", "ods", "nnz", THREADS
    );
    let mut evals = Vec::new();
    for case in &mut eval_cases {
        let r = run_eval_case(case, reps);
        println!(
            "{:<16} {:<12} {:>8} {:>9} | {}",
            r.name,
            r.model,
            r.num_ods,
            r.nnz,
            json_f64_list(&r.gradient_ms)
        );
        evals.push(r);
    }

    println!();
    println!("fused kernel vs separate kernels (serial variant):");
    let mut fused = Vec::new();
    for case in &eval_cases {
        let f = run_fused_case(case, reps);
        println!(
            "{:<16} {:<12} separate {:>9.3} ms   fused {:>9.3} ms   gain {:.2}x",
            f.name,
            f.model,
            f.separate_ms[0],
            f.fused_ms[0],
            f.separate_ms[0] / f.fused_ms[0]
        );
        fused.push(f);
    }

    println!();
    println!("solver end-to-end (serial vs {} threads):", 4);
    let solver_iters = if quick { 20 } else { 60 };
    let rand_task = random_task(rand_n, rand_chords);
    let solvers = vec![
        run_solver_case("geant_janet", &janet, 2000, 4),
        run_solver_case("abilene", &abilene, 2000, 4),
        run_solver_case(&format!("random{rand_n}"), &rand_task, solver_iters, 4),
    ];
    for s in &solvers {
        println!(
            "{:<16} serial {:>9.1} ms   parallel {:>9.1} ms   obj rel diff {:.1e}",
            s.name, s.serial_ms, s.parallel_ms, s.objective_rel_diff
        );
    }

    println!();
    let (utilities, weights, rows, dim) = random_parts(rand_n, rand_chords, dsts);
    let obs_disabled = PlacementObjective::from_parts(
        utilities.clone(),
        weights.clone(),
        rows.clone(),
        RateModel::Approximate,
        dim,
    );
    let obs_enabled =
        PlacementObjective::from_parts(utilities, weights, rows, RateModel::Approximate, dim)
            .with_recorder(Recorder::enabled());
    let obs = run_obs_overhead(&obs_disabled, &obs_enabled, if quick { 15 } else { 25 });
    println!(
        "obs overhead (serial gradient, batched): disabled {:.3} ms   enabled {:.3} ms   ratio {:.4}",
        obs.disabled_ms, obs.enabled_ms, obs.overhead_ratio
    );

    let json = render_json(quick, &evals, &fused, &solvers, &obs);
    std::fs::write(&out_path, &json).expect("write JSON report");
    println!();
    println!("wrote {out_path}");
    footer(t0);
}
