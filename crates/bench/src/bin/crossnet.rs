//! §V-C generality claim — the method's advantage on a second backbone.
//!
//! The paper argues its benefit comes from a *general* property of backbone
//! design ("the optimization method finds those links across the entire
//! network where the small OD pairs manifest themselves with a small amount
//! of cross traffic … we argue that the benefits are not limited to the
//! specific network topology under consideration"). This experiment repeats
//! the §V-C comparison on the Abilene/Internet2 backbone: network-wide
//! optimization vs ingress-PoP-links-only vs access-link accounting.

use nws_bench::{banner, footer};
use nws_core::baseline::access_link_only;
use nws_core::report::render_csv;
use nws_core::scenarios::{abilene_task, nycm_links};
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};
use nws_topo::abilene_access_link;

fn main() {
    let t0 = banner("crossnet", "the Section V-C comparison repeated on Abilene");

    let thetas = [5_000.0, 15_000.0, 40_000.0, 120_000.0, 400_000.0];
    let cfg = PlacementConfig::default();
    let mut rows = Vec::new();

    for &theta in &thetas {
        let task = abilene_task(theta, 7).expect("valid theta");
        let full = solve_placement(&task, &cfg).expect("feasible");
        let full_acc = summarize(&evaluate_accuracy(&task, &full, 20, 21));

        let restricted = task
            .restricted_to(&nycm_links(task.topology()))
            .expect("NYCM links usable");
        let ingress = solve_placement(&restricted, &cfg).expect("feasible");
        let ing_acc = summarize(&evaluate_accuracy(&restricted, &ingress, 20, 21));

        println!(
            "theta {theta:>8}: full avg {:.4} worst {:+.4} | ingress-only avg {:.4} worst {:+.4}",
            full_acc.mean, full_acc.worst, ing_acc.mean, ing_acc.worst
        );
        rows.push(vec![
            theta,
            full_acc.mean,
            full_acc.worst,
            ing_acc.mean,
            ing_acc.worst,
        ]);
    }

    // Access-link accounting at the middle theta.
    let task = abilene_task(40_000.0, 7).expect("valid");
    let opt = solve_placement(&task, &cfg).expect("feasible");
    let binding_rho = opt
        .effective_rates_approx
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    let access = abilene_access_link(task.topology());
    let baseline = access_link_only(&task, access).expect("loaded");
    let needed = baseline.capacity_for_rho(&task, binding_rho);
    println!();
    println!(
        "access-link-only on Abilene: {:.0} sampled pkts/interval to match the \
         optimum's highest per-OD rate ({:+.1}% vs theta).",
        needed,
        100.0 * (needed / task.theta() - 1.0)
    );
    println!(
        "Note the contrast with GEANT (+70%): Abilene's uniform OC-192 trunks leave \
         milder load asymmetry, so the binding rate the optimum assigns to its \
         smallest pair is lower — the advantage of network-wide placement scales \
         with the quiet-tail-link structure the paper's §V-C argument relies on. \
         The ingress-only comparison above still shows the optimum winning on the \
         worst-served OD pair at every capacity."
    );

    println!();
    print!(
        "{}",
        render_csv(
            &[
                "theta",
                "full_avg",
                "full_worst",
                "ingress_avg",
                "ingress_worst"
            ],
            &rows
        )
    );

    footer(t0);
}
