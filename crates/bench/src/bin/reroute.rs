//! §I — why static placements go stale: re-routing after a fibre cut.
//!
//! The paper's core motivation for *re-optimizable* router-embedded
//! monitoring: short-term traffic variation from failures makes any static
//! placement sub-optimal. This experiment cuts the FR–LU fibre. The optimal
//! placement tracks the smallest OD pair (JANET-LU, 20 pkt/s) with a ~1 %
//! monitor on FR-LU; after the cut, LU traffic reroutes via NL–DE–LU where
//! the stale configuration has only the ~10⁻⁵-rate core monitors, so the
//! pair effectively disappears from view until re-optimization. Three
//! configurations are compared on the post-failure network:
//!
//! 1. the stale pre-failure rates (what a static deployment keeps running),
//! 2. the re-optimized rates (one solver run on the new routing),
//! 3. the pre-failure optimum on the pre-failure network (reference).

use nws_bench::{banner, footer};
use nws_core::scenarios::{
    janet_task, janet_task_on, BACKGROUND_SEED, BACKGROUND_TOTAL_PKTS_PER_SEC, PAPER_THETA,
};
use nws_core::{evaluate_accuracy, evaluate_rates, solve_placement, summarize, PlacementConfig};
use nws_routing::failure::{bidirectional_pair, link_id_map, without_links};
use nws_traffic::demand::DemandMatrix;
use nws_traffic::MEASUREMENT_INTERVAL_SECS;

fn main() {
    let t0 = banner(
        "reroute",
        "stale vs re-optimized placement after a fibre cut",
    );

    // Pre-failure optimum.
    let before = janet_task();
    let cfg = PlacementConfig::default();
    let sol_before = solve_placement(&before, &cfg).expect("feasible");
    let acc_before = summarize(&evaluate_accuracy(&before, &sol_before, 20, 5));
    println!(
        "pre-failure optimum: objective {:.4}, worst-OD accuracy {:.4}",
        sol_before.objective, acc_before.worst
    );

    // Cut the FR<->LU fibre and reconverge routing + background loads.
    let topo = before.topology();
    let fr = topo.require_node("FR").expect("FR");
    let lu = topo.require_node("LU").expect("LU");
    let failed = bidirectional_pair(topo, fr, lu);
    let topo_after = without_links(topo, &failed).expect("survivor valid");
    let idmap = link_id_map(topo, &failed);

    let background = DemandMatrix::gravity_capacity_weighted(
        &topo_after,
        BACKGROUND_TOTAL_PKTS_PER_SEC * MEASUREMENT_INTERVAL_SECS,
        0.5,
        BACKGROUND_SEED,
    );
    let bg_loads = background.link_loads(&topo_after);
    let after = janet_task_on(topo_after, &bg_loads, PAPER_THETA).expect("post-failure task valid");

    // 1. Stale configuration: carry the old per-link rates over (failed
    //    links simply disappear along with their monitors).
    let mut stale_rates = vec![0.0; after.topology().num_links()];
    for (old_idx, new_id) in idmap.iter().enumerate() {
        if let Some(new_id) = new_id {
            stale_rates[new_id.index()] = sol_before.rates[old_idx];
        }
    }
    let stale = evaluate_rates(&after, &stale_rates);
    let acc_stale = summarize(&evaluate_accuracy(&after, &stale, 20, 5));

    // 2. Re-optimized configuration.
    let reopt = solve_placement(&after, &cfg).expect("post-failure feasible");
    let acc_reopt = summarize(&evaluate_accuracy(&after, &reopt, 20, 5));

    println!(
        "post-failure, stale rates : objective {:.4}, worst-OD accuracy {:+.4}",
        stale.objective, acc_stale.worst
    );
    println!(
        "post-failure, re-optimized: objective {:.4}, worst-OD accuracy {:.4}",
        reopt.objective, acc_reopt.worst
    );

    // ODs most hurt by staleness.
    println!();
    println!("per-OD utility (stale vs re-optimized), ODs hurt worst first:");
    let mut deltas: Vec<(usize, f64)> = (0..after.ods().len())
        .map(|k| (k, reopt.utilities[k] - stale.utilities[k]))
        .collect();
    deltas.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (k, delta) in deltas.iter().take(5) {
        println!(
            "  {:<12} stale {:.4} -> reopt {:.4} ({:+.4})",
            after.ods()[*k].name,
            stale.utilities[*k],
            reopt.utilities[*k],
            delta
        );
    }
    println!();
    println!(
        "re-optimization recovers {:+.4} objective ({:.1}% of the stale gap to the \
         pre-failure level)",
        reopt.objective - stale.objective,
        100.0 * (reopt.objective - stale.objective)
            / (sol_before.objective - stale.objective).max(1e-12)
    );

    footer(t0);
}
