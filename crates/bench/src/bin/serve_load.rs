//! Load generator for the multi-connection serving layer (`Daemon::serve`):
//! hundreds of concurrent loopback-TCP connections with a read-heavy mix
//! (70% `query_rates`, 20% `health`, 10% `stats`) next to a stream of
//! `update_demand` bursts, measuring throughput and p50/p95/p99 latency
//! split by read/mutate.
//!
//! The daemon runs in-process on an ephemeral loopback port, so the numbers
//! price the serving stack itself (connection threads, snapshot reads,
//! coalescing, solver) without network noise. After the timed phase a
//! control connection scrapes the daemon's own counters — lock-free reads,
//! enqueued jobs, coalesce flushes — which is what lets CI assert that
//! reads never touched the queue and that K coalesced updates cost one
//! rebuild, then issues `shutdown` (which also exercises the
//! drain-all-connections path under load).
//!
//! The bench runs with the serving-layer timeouts *enabled* (idle reaping
//! and slow-client write timeouts), so the scraped eviction/idle-timeout
//! counters double as a gate: healthy clients under load must never trip
//! the slow-client protection.
//!
//! Emits machine-readable JSON (default `BENCH_serve.json`) gated by
//! `scripts/check_bench.py`. Flags: `--quick` (CI smoke mode), `--out PATH`,
//! `--readers N`, `--writers N`, `--duration-ms MS`, `--coalesce-ms MS`,
//! `--idle-timeout-ms MS`, `--write-timeout-ms MS`, `--seed N`.

use nws_bench::{banner, footer};
use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_service::json::{obj, parse, Json};
use nws_service::{Daemon, DaemonOptions, NetOptions, Server, ServiceState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Writers send their demand updates in bursts of this many lines: bursts
/// land inside one coalescing window, which is the batching behavior the
/// counters below certify.
const BURST: usize = 8;

/// What one client thread measured.
#[derive(Debug, Default)]
struct ClientStats {
    read_latencies_ms: Vec<f64>,
    mutate_latencies_ms: Vec<f64>,
    read_errors: u64,
    mutate_errors: u64,
    shed: u64,
    protocol_errors: u64,
    max_coalesced: u64,
}

/// One connected JSON-lines client.
struct Client {
    stream: TcpStream,
    lines: BufReader<TcpStream>,
    buf: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let lines = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            stream,
            lines,
            buf: String::new(),
        };
        let hello = client.read_line()?;
        assert_eq!(hello.get("cmd").and_then(|c| c.as_str()), Some("hello"));
        Ok(client)
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    fn read_line(&mut self) -> std::io::Result<Json> {
        self.buf.clear();
        let n = self.lines.read_line(&mut self.buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed",
            ));
        }
        parse(self.buf.trim()).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    fn round_trip(&mut self, line: &str) -> std::io::Result<Json> {
        self.send(line)?;
        self.read_line()
    }
}

/// A read-only client: weighted command mix until the deadline.
fn run_reader(addr: SocketAddr, seed: u64, deadline: Instant) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let Ok(mut client) = Client::connect(addr) else {
        stats.protocol_errors += 1;
        return stats;
    };
    while Instant::now() < deadline {
        let roll: f64 = rng.random_range(0.0..1.0);
        let cmd = if roll < 0.70 {
            "{\"cmd\":\"query_rates\"}"
        } else if roll < 0.90 {
            "{\"cmd\":\"health\"}"
        } else {
            "{\"cmd\":\"stats\"}"
        };
        let t0 = Instant::now();
        match client.round_trip(cmd) {
            Ok(response) => {
                stats
                    .read_latencies_ms
                    .push(t0.elapsed().as_secs_f64() * 1e3);
                if response.get("ok").and_then(Json::as_bool) != Some(true) {
                    stats.read_errors += 1;
                }
            }
            Err(_) => {
                stats.protocol_errors += 1;
                break;
            }
        }
    }
    stats
}

/// A mutating client: bursts of `update_demand` lines (all written before
/// any response is read, so they share one coalescing window), then the
/// burst's responses in order. Latency is measured per response from the
/// burst start. `overloaded` sheds are counted separately — they are the
/// daemon's documented backpressure, not failures.
fn run_writer(addr: SocketAddr, seed: u64, deadline: Instant, ods: &[String]) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let Ok(mut client) = Client::connect(addr) else {
        stats.protocol_errors += 1;
        return stats;
    };
    while Instant::now() < deadline {
        let t0 = Instant::now();
        let mut burst_ok = true;
        for _ in 0..BURST {
            let od = &ods[rng.random_range(0..ods.len())];
            let size = rng.random_range(1.0e6..2.0e7);
            let line = format!("{{\"cmd\":\"update_demand\",\"od\":\"{od}\",\"size\":{size:.0}}}");
            if client.send(&line).is_err() {
                stats.protocol_errors += 1;
                burst_ok = false;
                break;
            }
        }
        if !burst_ok {
            break;
        }
        for _ in 0..BURST {
            match client.read_line() {
                Ok(response) => {
                    stats
                        .mutate_latencies_ms
                        .push(t0.elapsed().as_secs_f64() * 1e3);
                    if response.get("ok").and_then(Json::as_bool) == Some(true) {
                        if let Some(k) = response.get("coalesced").and_then(Json::as_u64) {
                            stats.max_coalesced = stats.max_coalesced.max(k);
                        }
                    } else if response.get("error").and_then(|e| e.as_str()) == Some("overloaded") {
                        stats.shed += 1;
                    } else {
                        stats.mutate_errors += 1;
                    }
                }
                Err(_) => {
                    stats.protocol_errors += 1;
                    burst_ok = false;
                    break;
                }
            }
        }
        if !burst_ok {
            break;
        }
    }
    stats
}

/// Nearest-rank percentile of an unsorted sample; 0 when empty.
fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let rank = (q * values.len() as f64).ceil() as usize;
    values[rank.saturating_sub(1).min(values.len() - 1)]
}

/// The `{count, errors, throughput_per_sec, p50/p95/p99_ms}` section.
fn side_json(latencies: &mut [f64], errors: u64, wall_s: f64) -> Json {
    obj(vec![
        ("count", Json::UInt(latencies.len() as u64)),
        ("errors", Json::UInt(errors)),
        (
            "throughput_per_sec",
            Json::Num(latencies.len() as f64 / wall_s.max(1e-9)),
        ),
        ("p50_ms", Json::Num(percentile(latencies, 0.50))),
        ("p95_ms", Json::Num(percentile(latencies, 0.95))),
        ("p99_ms", Json::Num(percentile(latencies, 0.99))),
    ])
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let readers: usize = flag_value(&args, "--readers")
        .map(|v| v.parse().expect("--readers: positive integer"))
        .unwrap_or(if quick { 32 } else { 200 });
    let writers: usize = flag_value(&args, "--writers")
        .map(|v| v.parse().expect("--writers: positive integer"))
        .unwrap_or(if quick { 4 } else { 8 });
    let duration_ms: u64 = flag_value(&args, "--duration-ms")
        .map(|v| v.parse().expect("--duration-ms: positive integer"))
        .unwrap_or(if quick { 1_500 } else { 5_000 });
    let coalesce_ms: u64 = flag_value(&args, "--coalesce-ms")
        .map(|v| v.parse().expect("--coalesce-ms: integer"))
        .unwrap_or(5);
    // Timeouts are on by default so the bench certifies that the
    // slow-client protection never fires against healthy load.
    let idle_timeout_ms: u64 = flag_value(&args, "--idle-timeout-ms")
        .map(|v| v.parse().expect("--idle-timeout-ms: integer"))
        .unwrap_or(10_000);
    let write_timeout_ms: u64 = flag_value(&args, "--write-timeout-ms")
        .map(|v| v.parse().expect("--write-timeout-ms: integer"))
        .unwrap_or(5_000);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed: integer"))
        .unwrap_or(42);

    let t0 = banner(
        "serve_load",
        "multi-connection serving throughput/latency under a read-heavy mix",
    );
    println!(
        "readers={readers} writers={writers} duration={duration_ms}ms \
         coalesce={coalesce_ms}ms idle-timeout={idle_timeout_ms}ms \
         write-timeout={write_timeout_ms}ms seed={seed}"
    );

    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let ods: Vec<String> = state.ods().iter().map(|o| o.name.clone()).collect();
    let mut daemon = Daemon::new(
        state,
        DaemonOptions {
            queue_capacity: 256,
            coalesce_ms,
            ..DaemonOptions::default()
        },
    );
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        idle_timeout_ms,
        write_timeout_ms,
        ..NetOptions::default()
    })
    .expect("bind loopback listener");
    let addr = server.tcp_addr().expect("tcp listener address");
    let daemon_thread = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    let load_start = Instant::now();
    let deadline = load_start + Duration::from_millis(duration_ms);
    let mut stats = ClientStats::default();
    std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|i| scope.spawn(move || run_reader(addr, seed ^ (i as u64) << 1, deadline)))
            .collect();
        let ods = &ods;
        let writer_handles: Vec<_> = (0..writers)
            .map(|i| {
                scope.spawn(move || {
                    run_writer(addr, seed ^ 0x9e37 ^ ((i as u64) << 32), deadline, ods)
                })
            })
            .collect();
        for handle in reader_handles.into_iter().chain(writer_handles) {
            let s = handle.join().expect("client thread");
            stats.read_latencies_ms.extend(s.read_latencies_ms);
            stats.mutate_latencies_ms.extend(s.mutate_latencies_ms);
            stats.read_errors += s.read_errors;
            stats.mutate_errors += s.mutate_errors;
            stats.shed += s.shed;
            stats.protocol_errors += s.protocol_errors;
            stats.max_coalesced = stats.max_coalesced.max(s.max_coalesced);
        }
    });
    let wall_s = load_start.elapsed().as_secs_f64();

    // Control connection: scrape the daemon's own counters, then shut the
    // whole server down (drains every lingering connection).
    let mut control = Client::connect(addr).expect("control connection");
    let metrics = control
        .round_trip("{\"cmd\":\"metrics\"}")
        .expect("metrics scrape");
    let metrics = metrics.get("metrics").expect("metrics payload").clone();
    let bye = control
        .round_trip("{\"cmd\":\"shutdown\"}")
        .expect("shutdown");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    let summary = daemon_thread.join().expect("daemon thread");

    let reads_lockfree = counter(&metrics, "daemon_reads_served_lockfree_total");
    let jobs_enqueued = counter(&metrics, "daemon_jobs_enqueued_total");
    let coalesce_flushes = counter(&metrics, "daemon_coalesce_flushes_total");
    let coalesced_updates = counter(&metrics, "daemon_coalesced_updates_total");
    let epoch_rebuilds = counter(&metrics, "state_epoch_rebuilds_total");
    let slow_evictions = counter(&metrics, "daemon_slow_client_evictions_total");
    let idle_timeouts = counter(&metrics, "daemon_conn_idle_timeouts_total");
    let conn_io_errors = counter(&metrics, "daemon_conn_io_errors_total");

    let read_count = stats.read_latencies_ms.len();
    let mutate_count = stats.mutate_latencies_ms.len();
    let report = obj(vec![
        ("bench", Json::Str("serve_load".into())),
        ("quick", Json::Bool(quick)),
        (
            "config",
            obj(vec![
                ("readers", Json::UInt(readers as u64)),
                ("writers", Json::UInt(writers as u64)),
                ("duration_ms", Json::UInt(duration_ms)),
                ("coalesce_ms", Json::UInt(coalesce_ms)),
                ("idle_timeout_ms", Json::UInt(idle_timeout_ms)),
                ("write_timeout_ms", Json::UInt(write_timeout_ms)),
                ("burst", Json::UInt(BURST as u64)),
                ("seed", Json::UInt(seed)),
            ]),
        ),
        ("wall_s", Json::Num(wall_s)),
        (
            "read",
            side_json(&mut stats.read_latencies_ms, stats.read_errors, wall_s),
        ),
        (
            "mutate",
            side_json(&mut stats.mutate_latencies_ms, stats.mutate_errors, wall_s),
        ),
        ("protocol_errors", Json::UInt(stats.protocol_errors)),
        ("shed", Json::UInt(stats.shed)),
        ("max_coalesced", Json::UInt(stats.max_coalesced)),
        (
            "counters",
            obj(vec![
                ("reads_served_lockfree", Json::UInt(reads_lockfree)),
                ("jobs_enqueued", Json::UInt(jobs_enqueued)),
                ("coalesce_flushes", Json::UInt(coalesce_flushes)),
                ("coalesced_updates", Json::UInt(coalesced_updates)),
                ("epoch_rebuilds", Json::UInt(epoch_rebuilds)),
                ("slow_client_evictions", Json::UInt(slow_evictions)),
                ("conn_idle_timeouts", Json::UInt(idle_timeouts)),
                ("conn_io_errors", Json::UInt(conn_io_errors)),
            ]),
        ),
        (
            "daemon",
            obj(vec![
                ("requests", Json::UInt(summary.requests)),
                ("resolves", Json::UInt(summary.resolves)),
                ("shed", Json::UInt(summary.shed)),
                ("reads_lockfree", Json::UInt(summary.reads_lockfree)),
                ("connections", Json::UInt(summary.connections)),
                ("clean_shutdown", Json::Bool(summary.clean_shutdown)),
            ]),
        ),
    ]);

    println!(
        "reads: {} ({:.0}/s), mutates: {} ({:.0}/s), lockfree: {}, \
         enqueued: {}, flushes: {}, max batch: {}",
        read_count,
        read_count as f64 / wall_s.max(1e-9),
        mutate_count,
        mutate_count as f64 / wall_s.max(1e-9),
        reads_lockfree,
        jobs_enqueued,
        coalesce_flushes,
        stats.max_coalesced,
    );
    println!(
        "protocol errors: {}, read errors: {}, mutate errors: {}, shed: {}",
        stats.protocol_errors, stats.read_errors, stats.mutate_errors, stats.shed
    );
    println!(
        "slow-client evictions: {slow_evictions}, idle timeouts: {idle_timeouts}, \
         conn io errors: {conn_io_errors}"
    );

    let mut text = report.encode();
    text.push('\n');
    std::fs::write(&out_path, text).expect("write JSON report");
    println!();
    println!("wrote {out_path}");
    footer(t0);
}
