//! §IV-D — convergence statistics of the gradient projection method.
//!
//! The paper runs 200 independent executions with varying inputs (OD sizes,
//! link loads, capacity θ) and reports: 98.6 % of runs find the optimum in
//! under 2000 iterations, and active constraints with negative Lagrange
//! multipliers have to be released 1.64 times per run on average.
//!
//! This binary reproduces the protocol: 200 randomized JANET-task instances
//! (per-instance background gravity matrix, lognormal-perturbed OD sizes,
//! θ drawn log-uniformly), solved in parallel.

use nws_bench::{banner, footer, mean, std_dev};
use nws_core::scenarios::JANET_OD_RATES;
use nws_core::{solve_placement, MeasurementTask, PlacementConfig};
use nws_routing::OdPair;
use nws_topo::geant;
use nws_traffic::demand::DemandMatrix;
use nws_traffic::dist::LogNormal;
use nws_traffic::MEASUREMENT_INTERVAL_SECS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds one randomized instance. Mirrors `janet_task_on` but jitters the
/// OD sizes so that not only loads and θ but the measurement task itself
/// varies across runs (the paper varies "OD pair sizes, link loads,
/// capacity θ").
fn random_instance(seed: u64) -> MeasurementTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = geant();
    let background_total = rng.random_range(300_000.0..2_000_000.0) * MEASUREMENT_INTERVAL_SECS;
    let background =
        DemandMatrix::gravity_capacity_weighted(&topo, background_total, 0.6, seed ^ 0xBEEF);
    let bg_loads = background.link_loads(&topo);

    let janet = topo.require_node("JANET").unwrap();
    let jitter = LogNormal::from_mean_cv(1.0, 0.5);
    let mut builder = MeasurementTask::builder(topo.clone());
    let mut tracked_total = 0.0;
    for &(dst, rate) in &JANET_OD_RATES {
        let node = topo.require_node(dst).unwrap();
        let size = rate * MEASUREMENT_INTERVAL_SECS * jitter.sample(&mut rng);
        tracked_total += size;
        builder = builder.track(format!("JANET-{dst}"), OdPair::new(janet, node), size);
    }
    // θ log-uniform between 1 % and 30 % of the tracked traffic volume.
    let theta = tracked_total * 10f64.powf(rng.random_range(-2.0..-0.52));
    builder
        .background_loads(&bg_loads)
        .theta(theta)
        .build()
        .expect("instance valid")
}

fn main() {
    let t0 = banner(
        "convergence",
        "solver statistics over 200 randomized instances",
    );

    let n = 200usize;
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get());
    let results: Vec<(bool, usize, usize)> = std::thread::scope(|scope| {
        let chunks: Vec<Vec<u64>> = (0..workers)
            .map(|w| ((w as u64)..n as u64).step_by(workers).collect())
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|seed| {
                            let task = random_instance(seed);
                            let sol = solve_placement(&task, &PlacementConfig::default())
                                .expect("instances are feasible by construction");
                            (
                                sol.kkt_verified,
                                sol.diagnostics.iterations,
                                sol.diagnostics.constraint_releases,
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker ok"))
            .collect()
    });

    let converged = results.iter().filter(|r| r.0).count();
    let iters: Vec<f64> = results.iter().map(|r| r.1 as f64).collect();
    let releases: Vec<f64> = results.iter().map(|r| r.2 as f64).collect();
    let max_iters = iters.iter().cloned().fold(0.0, f64::max);

    println!("instances: {n}");
    println!(
        "converged to certified optimum within 2000 iterations: {} ({:.1}%)   \
         [paper: 98.6%]",
        converged,
        100.0 * converged as f64 / n as f64
    );
    println!(
        "iterations: mean {:.1}, std {:.1}, max {:.0}",
        mean(&iters),
        std_dev(&iters),
        max_iters
    );
    println!(
        "constraint releases (negative-multiplier events): mean {:.2}, std {:.2}   \
         [paper: mean 1.64]",
        mean(&releases),
        std_dev(&releases)
    );

    footer(t0);
}
