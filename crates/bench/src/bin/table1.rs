//! Table I — optimal sampling rates on GEANT for the JANET task.
//!
//! Reproduces the paper's headline experiment: estimate the traffic JANET
//! (AS 786) sends to 20 GEANT PoPs, with θ = 100 000 sampled packets per
//! 5-minute interval and no per-link cap. Prints the activated monitors
//! with their rates, loads and capacity contributions, and the per-OD
//! utilities and Monte-Carlo accuracies (20 sampling runs, as in §V-B).

use nws_bench::{banner, footer};
use nws_core::report::render_table1;
use nws_core::scenarios::janet_task;
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};

fn main() {
    let t0 = banner("table1", "optimal sampling rates for the JANET->GEANT task");

    let task = janet_task();
    let sol =
        solve_placement(&task, &PlacementConfig::default()).expect("reference task is feasible");
    let accs = evaluate_accuracy(&task, &sol, 20, 1);

    print!("{}", render_table1(&task, &sol, &accs));

    let summary = summarize(&accs);
    println!();
    println!(
        "accuracy: mean {:.4} | worst OD {:.4} | best OD {:.4}   (paper: avg > 0.89 per OD)",
        summary.mean, summary.worst, summary.best
    );

    // Paper §V-B cross-checks.
    let max_rate = sol.rates.iter().cloned().fold(0.0, f64::max);
    // "Significant" monitors of an OD: links contributing at least 20 % of
    // its effective rate. The paper's at-most-two-links observation is
    // about where an OD is *meaningfully* sampled; with more activated
    // monitors overall, other tiny contributions ride along on shared paths.
    let max_significant = (0..task.ods().len())
        .map(|k| {
            let rho = sol.effective_rates_approx[k];
            sol.monitors_of_od(&task, k)
                .iter()
                .filter(|&&(_, p)| p >= 0.2 * rho)
                .count()
        })
        .max()
        .unwrap_or(0);
    println!("max sampling rate: {max_rate:.4} (paper: ~0.009 on the quietest links)");
    println!(
        "monitors contributing >=20% of an OD's effective rate: <= {max_significant} per OD \
         (paper: at most two per OD)"
    );
    println!(
        "active monitors: {} of {} candidate links",
        sol.active_monitors.len(),
        task.candidate_links().len()
    );

    footer(t0);
}
