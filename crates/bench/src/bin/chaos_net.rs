//! Chaos-net drill for CI: seeded socket-fault schedules driving the
//! resilient `nws-client` through a fixed mutation workload against an
//! in-process daemon, reporting only *semantic* invariants.
//!
//! Everything in the report is deterministic for a fixed seed list —
//! which invariant held, the solve/epoch counts, and a digest of the
//! final served state — and everything timing-dependent (reconnect
//! counts, retry counts, wall times) is deliberately left out: TCP
//! packet boundaries shift the read-op → protocol-event mapping between
//! runs, so those counters vary even under an identical fault schedule.
//! That is what lets `bench_smoke.sh` run the drill twice and `cmp` the
//! two reports byte-for-byte as its determinism gate.
//!
//! Per schedule the drill asserts the resilient-session contract:
//! no panics, no torn response lines, every mutation applied exactly
//! once (solve count equal to the fault-free baseline), a clean daemon
//! shutdown, and a final `query_rates` response byte-identical to the
//! fault-free baseline.
//!
//! Flags: `--quick` (12 seeds instead of 48), `--seeds N`,
//! `--out PATH` (default `BENCH_chaos_net.json`).

use nws_client::{Client, ClientConfig};
use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_service::json::{obj, Json};
use nws_service::{
    Daemon, DaemonOptions, DaemonSummary, NetFaultPlan, NetOptions, Request, Server, ServiceState,
};
use std::net::SocketAddr;

/// Mutations per workload (each followed by a read).
const MUTATIONS: usize = 6;

fn boot(chaos: Option<NetFaultPlan>) -> (SocketAddr, std::thread::JoinHandle<DaemonSummary>) {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        chaos,
        ..NetOptions::default()
    })
    .expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp addr");
    let handle = std::thread::spawn(move || daemon.serve(server).expect("serve"));
    (addr, handle)
}

/// What one run yields: the final read, the torn-line count, and the
/// daemon summary.
struct RunOutcome {
    final_read: String,
    torn_lines: u64,
    summary: DaemonSummary,
}

/// Runs the fixed workload against one daemon (chaotic or not).
fn run_workload(chaos: Option<NetFaultPlan>, seed: u64) -> RunOutcome {
    let (addr, daemon) = boot(chaos);
    let mut cfg = ClientConfig::new(addr.to_string());
    cfg.request_timeout_ms = 2_000;
    cfg.backoff_base_ms = 2;
    cfg.backoff_max_ms = 20;
    cfg.max_attempts = 16;
    cfg.jitter_seed = seed;
    cfg.client_id = format!("drill-{seed}");
    let mut client = Client::new(cfg);
    for i in 0..MUTATIONS {
        let od = if i % 2 == 0 { "JANET-NL" } else { "JANET-DE" };
        let ack = client
            .request(&Request::UpdateDemand {
                od: od.into(),
                size: 2.0e6 + i as f64 * 1.0e6,
            })
            .unwrap_or_else(|e| panic!("seed {seed}: mutation {i} exhausted: {e}"));
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        let read = client
            .request(&Request::QueryRates)
            .unwrap_or_else(|e| panic!("seed {seed}: read {i} exhausted: {e}"));
        assert_eq!(read.get("ok").and_then(Json::as_bool), Some(true));
    }
    let final_read = client
        .request(&Request::QueryRates)
        .unwrap_or_else(|e| panic!("seed {seed}: final read exhausted: {e}"));
    // `Ok(None)` from shutdown means "sent, ack lost" — under chaos the
    // line itself may have died in a reset, so re-issue until the serve
    // loop has observably exited.
    for round in 0.. {
        let sent = client.shutdown();
        for _ in 0..100 {
            if daemon.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        if daemon.is_finished() {
            break;
        }
        if let Err(e) = sent {
            panic!("seed {seed}: shutdown exhausted: {e}");
        }
        assert!(round < 20, "seed {seed}: daemon never acted on shutdown");
    }
    RunOutcome {
        final_read: final_read.encode(),
        torn_lines: client.stats().torn_lines,
        summary: daemon.join().expect("daemon thread"),
    }
}

/// FNV-1a over the final read encoding: a compact, stable digest for the
/// report (the full rates vector would bloat every schedule row).
fn digest(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{h:016x}")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_chaos_net.json".to_string());
    let seeds: u64 = flag_value(&args, "--seeds")
        .map(|v| v.parse().expect("--seeds: positive integer"))
        .unwrap_or(if quick { 12 } else { 48 });

    println!("== chaos_net: {seeds} seeded fault schedules, {MUTATIONS} mutations each ==");
    let baseline = run_workload(None, u64::MAX);
    assert_eq!(baseline.torn_lines, 0, "fault-free baseline tore a line");
    assert!(baseline.summary.clean_shutdown);
    let baseline_digest = digest(&baseline.final_read);
    println!(
        "baseline: {} resolves, final-state digest {baseline_digest}",
        baseline.summary.resolves
    );

    let mut rows = Vec::new();
    let mut failures: u64 = 0;
    for seed in 0..seeds {
        let outcome = run_workload(Some(NetFaultPlan::new(seed)), seed);
        let exactly_once = outcome.summary.resolves == baseline.summary.resolves;
        let matches_baseline = outcome.final_read == baseline.final_read;
        let ok = exactly_once
            && matches_baseline
            && outcome.torn_lines == 0
            && outcome.summary.clean_shutdown;
        if !ok {
            failures += 1;
            println!(
                "seed {seed}: FAIL (exactly_once={exactly_once} \
                 matches_baseline={matches_baseline} torn={} clean={})",
                outcome.torn_lines, outcome.summary.clean_shutdown
            );
        }
        rows.push(obj(vec![
            ("seed", Json::UInt(seed)),
            ("resolves", Json::UInt(outcome.summary.resolves)),
            ("torn_lines", Json::UInt(outcome.torn_lines)),
            ("clean_shutdown", Json::Bool(outcome.summary.clean_shutdown)),
            ("exactly_once", Json::Bool(exactly_once)),
            ("matches_baseline", Json::Bool(matches_baseline)),
            ("final_digest", Json::Str(digest(&outcome.final_read))),
        ]));
    }

    let report = obj(vec![
        ("bench", Json::Str("chaos_net".into())),
        ("quick", Json::Bool(quick)),
        (
            "config",
            obj(vec![
                ("seeds", Json::UInt(seeds)),
                ("mutations", Json::UInt(MUTATIONS as u64)),
                ("fault_rate_per_256", Json::UInt(48)),
                ("max_faults_per_conn", Json::UInt(6)),
            ]),
        ),
        (
            "baseline",
            obj(vec![
                ("resolves", Json::UInt(baseline.summary.resolves)),
                ("final_digest", Json::Str(baseline_digest)),
            ]),
        ),
        ("schedules", Json::Arr(rows)),
        ("failures", Json::UInt(failures)),
    ]);
    let mut text = report.encode();
    text.push('\n');
    std::fs::write(&out_path, text).expect("write JSON report");
    println!(
        "{} of {seeds} schedules converged to the fault-free state; wrote {out_path}",
        seeds - failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
