//! §I quantified — a synthetic day of evolving traffic under different
//! monitoring policies.
//!
//! The paper's opening argument: traffic varies on short and long
//! timescales, so "these changes quickly make a static placement of traffic
//! monitors perform sub-optimally". This experiment runs 48 half-hourly-ish
//! intervals of a diurnal cycle (3× swing, 20 % noise, and OD peaks
//! staggered across time zones) over the GEANT/JANET task and compares: a
//! static configuration, hourly
//! re-optimization, and per-interval re-optimization — all warm-started, as
//! the router-embedded deployment model allows.

use nws_bench::{banner, footer, mean};
use nws_core::report::render_csv;
use nws_core::scenarios::janet_task;
use nws_core::simulate::{run_simulation, EvolutionParams, Policy};

fn main() {
    let t0 = banner(
        "diurnal",
        "static vs re-optimized monitoring over a synthetic day",
    );

    let base = janet_task();
    let params = EvolutionParams {
        diurnal_swing: 3.0,
        period: 48,
        noise_cv: 0.2,
        phase_spread: 0.4,
    };
    let n = 48;
    let seed = 20041122;

    let policies = [
        ("static", Policy::Static),
        ("reopt every 12", Policy::ReoptimizeEvery(12)),
        ("reopt every 1", Policy::ReoptimizeEvery(1)),
    ];

    let mut series = Vec::new();
    for (label, policy) in policies {
        let out = run_simulation(&base, policy, &params, n, seed).expect("simulates");
        let objectives: Vec<f64> = out.iter().map(|o| o.objective).collect();
        let worst: Vec<f64> = out.iter().map(|o| o.worst_utility).collect();
        println!(
            "{label:<16}: mean objective {:.4} | mean worst-OD utility {:.4} | min worst-OD {:+.4}",
            mean(&objectives),
            mean(&worst),
            worst.iter().cloned().fold(f64::INFINITY, f64::min)
        );
        series.push(out);
    }

    println!();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|t| {
            vec![
                t as f64,
                series[0][t].multiplier,
                series[0][t].objective,
                series[1][t].objective,
                series[2][t].objective,
            ]
        })
        .collect();
    print!(
        "{}",
        render_csv(
            &["interval", "multiplier", "static", "reopt_12", "reopt_1"],
            &rows
        )
    );

    footer(t0);
}
