//! §II — the joint formulation vs a two-phase heuristic (Suh et al. style).
//!
//! Related work solved placement in two phases: first choose monitor
//! locations (maximize sampled-traffic coverage), then assign rates. The
//! paper's contribution is solving both *jointly* with optimality
//! certificates. This experiment sweeps the monitor budget of the two-phase
//! heuristic and shows the joint optimum dominates at every budget.

use nws_bench::{banner, footer};
use nws_core::baseline::{two_phase_heuristic, uniform_everywhere};
use nws_core::report::render_csv;
use nws_core::scenarios::janet_task;
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};

fn main() {
    let t0 = banner("twophase", "joint optimization vs two-phase heuristic");

    let task = janet_task();
    let opt = solve_placement(&task, &PlacementConfig::default()).expect("feasible");
    let opt_acc = summarize(&evaluate_accuracy(&task, &opt, 20, 9));
    println!(
        "joint optimum : objective {:.4} | monitors {} | worst-OD accuracy {:.4}",
        opt.objective,
        opt.active_monitors.len(),
        opt_acc.worst
    );

    let uni = uniform_everywhere(&task).expect("uniform feasible");
    let uni_acc = summarize(&evaluate_accuracy(&task, &uni, 20, 9));
    println!(
        "uniform-all   : objective {:.4} | monitors {} | worst-OD accuracy {:+.4}",
        uni.objective,
        uni.active_monitors.len(),
        uni_acc.worst
    );
    println!();

    let mut rows = Vec::new();
    for budget in [1usize, 2, 4, 6, 8, 10, 15, 20] {
        let heur = two_phase_heuristic(&task, budget).expect("budget > 0");
        let acc = summarize(&evaluate_accuracy(&task, &heur, 20, 9));
        println!(
            "two-phase k={budget:>2}: objective {:.4} | monitors {:>2} | worst-OD accuracy {:+.4}",
            heur.objective,
            heur.active_monitors.len(),
            acc.worst
        );
        rows.push(vec![
            budget as f64,
            heur.objective,
            heur.active_monitors.len() as f64,
            acc.mean,
            acc.worst,
        ]);
    }

    println!();
    print!(
        "{}",
        render_csv(
            &["budget", "objective", "monitors", "acc_mean", "acc_worst"],
            &rows
        )
    );
    println!();
    println!(
        "joint optimum objective {:.4} dominates every two-phase budget above.",
        opt.objective
    );

    footer(t0);
}
