//! §I's deployment model — several measurement tasks sharing one
//! infrastructure budget.
//!
//! The introduction's motivating scenario: the traffic-engineering team
//! tracks the JANET OD matrix, while the security team watches prefixes
//! "below the radars for traffic engineering" that "may play an important
//! role in the early detection of anomalies". With router-embedded monitors
//! both tasks share the same budget θ; this experiment solves them jointly
//! and sweeps the security task's weight, showing the budget shifting
//! between estimation accuracy and detection coverage.

use nws_bench::{banner, footer};
use nws_core::multi::{solve_composite, SubTask, UtilityChoice};
use nws_core::report::render_csv;
use nws_core::scenarios::{janet_task_with, BACKGROUND_SEED, PAPER_THETA};
use nws_core::MeasurementTask;
use nws_routing::OdPair;
use nws_solver::SolverOptions;

fn main() {
    let t0 = banner(
        "multitask",
        "TE estimation + anomaly coverage under one budget",
    );

    let te = janet_task_with(PAPER_THETA, BACKGROUND_SEED).expect("valid");
    // The security task: three small "below the radar" flows, including one
    // to the otherwise-untracked IE PoP.
    let sec = {
        let topo = te.topology().clone();
        let janet = topo.require_node("JANET").expect("JANET");
        let bg = te.link_loads().to_vec();
        let mut b = MeasurementTask::builder(topo.clone());
        for (dst, rate) in [("IE", 700.0), ("HR", 1_200.0), ("SK", 400.0)] {
            let node = topo.require_node(dst).expect("PoP");
            b = b.track(format!("SEC-{dst}"), OdPair::new(janet, node), rate * 300.0);
        }
        b.background_loads(&bg)
            .theta(PAPER_THETA)
            .build()
            .expect("valid")
    };

    let mut rows = Vec::new();
    for w_sec in [0.0, 0.5, 1.0, 2.0, 5.0, 20.0] {
        let sol = solve_composite(
            &[
                SubTask {
                    task: &te,
                    weight: 1.0,
                    utility: UtilityChoice::SizeEstimation,
                },
                SubTask {
                    task: &sec,
                    weight: w_sec,
                    utility: UtilityChoice::Coverage { eps: 1e-4 },
                },
            ],
            PAPER_THETA,
            SolverOptions::default(),
        )
        .expect("feasible");

        let te_mean = sol.utilities[0].iter().sum::<f64>() / sol.utilities[0].len() as f64;
        let sec_min_rho = sol.effective_rates[1]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        println!(
            "w_sec {w_sec:>5}: TE mean utility {te_mean:.4} | security min effective \
             rate {sec_min_rho:.6} | monitors {}",
            sol.active_monitors.len()
        );
        rows.push(vec![
            w_sec,
            te_mean,
            sec_min_rho,
            sol.active_monitors.len() as f64,
        ]);
    }

    println!();
    print!(
        "{}",
        render_csv(
            &["w_sec", "te_mean_utility", "sec_min_rho", "monitors"],
            &rows
        )
    );
    println!();
    println!(
        "The trade is explicit: raising the security weight buys detection \
         coverage (min effective rate on the watched prefixes) at a marginal \
         cost in estimation utility — one convex program, one budget."
    );

    footer(t0);
}
