//! §IV-D ablation — what each algorithmic ingredient buys.
//!
//! The paper motivates two specific choices: Newton's method for the 1-D
//! search ("fast convergence" given the C² utility) and Polak–Ribière
//! conjugate mixing (pure projected gradients "form a zigzag path … which
//! may result in a poor convergence"). This ablation solves the same
//! randomized instances with each ingredient toggled and reports
//! iteration counts and certification rates — plus the warm-start speedup
//! of re-optimization.

use nws_bench::{banner, footer, mean, std_dev};
use nws_core::scenarios::{janet_task_with, BACKGROUND_SEED};
use nws_core::{solve_placement, solve_placement_warm, PlacementConfig};
use nws_solver::{NewtonLineSearch, SolverOptions};

fn main() {
    let t0 = banner(
        "ablation_solver",
        "Polak-Ribiere / line-search / warm-start ablation",
    );

    let thetas = [20_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0];
    let variants: [(&str, SolverOptions); 3] = [
        ("full (PR + Newton)", SolverOptions::default()),
        (
            "no Polak-Ribiere",
            SolverOptions {
                polak_ribiere: false,
                ..SolverOptions::default()
            },
        ),
        (
            "coarse line search",
            SolverOptions {
                line_search: NewtonLineSearch {
                    grad_tol: 1e-3,
                    max_iters: 8,
                },
                ..SolverOptions::default()
            },
        ),
    ];

    for (label, opts) in &variants {
        let mut iters = Vec::new();
        let mut certified = 0usize;
        for &theta in &thetas {
            let task = janet_task_with(theta, BACKGROUND_SEED).expect("valid");
            let cfg = PlacementConfig {
                solver: *opts,
                ..PlacementConfig::default()
            };
            let sol = solve_placement(&task, &cfg).expect("feasible");
            iters.push(sol.diagnostics.iterations as f64);
            certified += usize::from(sol.kkt_verified);
        }
        println!(
            "{label:<20}: certified {certified}/{} | iterations mean {:.0} std {:.0} max {:.0}",
            thetas.len(),
            mean(&iters),
            std_dev(&iters),
            iters.iter().cloned().fold(0.0, f64::max)
        );
    }

    // Warm-start ablation: re-optimize after a 10% traffic scale-up.
    println!();
    let base = janet_task_with(100_000.0, BACKGROUND_SEED).expect("valid");
    let cfg = PlacementConfig::default();
    let sol = solve_placement(&base, &cfg).expect("feasible");
    let shifted = janet_task_with(110_000.0, BACKGROUND_SEED).expect("valid");
    let cold = solve_placement(&shifted, &cfg).expect("feasible");
    let warm = solve_placement_warm(&shifted, &cfg, &sol.rates).expect("feasible");
    println!(
        "re-optimize after +10% theta: cold {} iterations, warm-started {} iterations \
         (same objective to {:.1e})",
        cold.diagnostics.iterations,
        warm.diagnostics.iterations,
        (cold.objective - warm.objective).abs()
    );

    footer(t0);
}
