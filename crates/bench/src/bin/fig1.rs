//! Figure 1 — the utility function `M(ρ)`.
//!
//! The paper plots `M` for two OD-size regimes, "average size S = 500" and
//! "S = 5000" (packets), marking the splice points `x₀` where the quadratic
//! expansion hands over to the exact mean-squared-relative-accuracy branch,
//! with utility labels 0.668 and 0.666 respectively.

use nws_bench::{banner, footer};
use nws_core::report::render_csv;
use nws_core::{SreUtility, Utility};

fn main() {
    let t0 = banner("fig1", "utility function M(rho) for two E[1/S] values");

    let sizes = [500.0, 5000.0];
    let utils: Vec<SreUtility> = sizes
        .iter()
        .map(|&s| SreUtility::from_mean_size(s))
        .collect();

    for (s, u) in sizes.iter().zip(&utils) {
        println!(
            "S = {s:>6}: c = E[1/S] = {:.6e}, x0 = {:.6e}, M(x0) = {:.4}",
            u.c(),
            u.x0(),
            u.value(u.x0())
        );
    }
    println!();

    // Log-spaced curve over [1e-5, 1] plus rho = 0.
    let mut rows = vec![vec![0.0, 0.0, 0.0]];
    let points = 200;
    for i in 0..=points {
        let rho = 10f64.powf(-5.0 + 5.0 * i as f64 / points as f64);
        rows.push(vec![rho, utils[0].value(rho), utils[1].value(rho)]);
    }
    print!("{}", render_csv(&["rho", "M_S500", "M_S5000"], &rows));

    footer(t0);
}
