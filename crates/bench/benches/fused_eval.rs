//! Criterion: the fused single-pass evaluation kernel against the three
//! separate kernels it replaces — the solver line-search/KKT hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use nws_core::scenarios::janet_task;
use nws_core::{EvalPool, ParallelConfig, PlacementObjective, RateModel, ReducedIndex};
use nws_linalg::Vector;
use nws_solver::Objective;
use std::hint::black_box;

fn bench_fused(c: &mut Criterion) {
    let task = janet_task();
    let index = ReducedIndex::new(&task);
    let dim = index.dim();
    let p: Vector = (0..dim).map(|v| 1e-3 * (1.0 + (v % 7) as f64)).collect();
    let s: Vector = (0..dim)
        .map(|v| if v % 2 == 0 { 1.0 } else { -0.5 })
        .collect();
    let mut group = c.benchmark_group("fused_eval");
    for (label, model) in [
        ("approx", RateModel::Approximate),
        ("exact", RateModel::Exact),
    ] {
        let obj = PlacementObjective::new(&task, &index, model);
        let mut g = Vector::zeros(dim);
        group.bench_function(format!("separate/{label}"), |b| {
            b.iter(|| {
                black_box(obj.value(black_box(&p)));
                obj.gradient_into(black_box(&p), &mut g);
                black_box(&g);
                black_box(obj.curvature_along(black_box(&p), black_box(&s)));
            })
        });
        group.bench_function(format!("fused/{label}"), |b| {
            b.iter(|| {
                black_box(obj.eval_fused(black_box(&p), Some(black_box(&s)), Some(&mut g)));
                black_box(&g);
            })
        });
        // Line-search probe shape: both directional derivatives, no gradient.
        group.bench_function(format!("fused_probe/{label}"), |b| {
            b.iter(|| black_box(obj.derivatives_along(black_box(&p), black_box(&s))))
        });
    }
    // Pooled fused sweep (forced 2-worker pool, cutoffs disabled) — tracks
    // the handoff overhead the auto-serial cutoff protects small cases from.
    let pooled = PlacementObjective::new(&task, &index, RateModel::Exact)
        .with_parallel(ParallelConfig {
            threads: 2,
            min_ods_per_thread: 1,
            min_nnz_parallel: 0,
        })
        .with_pool(EvalPool::global(2));
    let mut g = Vector::zeros(dim);
    group.bench_function("fused/exact_pooled_x2", |b| {
        b.iter(|| {
            black_box(pooled.eval_fused(black_box(&p), Some(black_box(&s)), Some(&mut g)));
            black_box(&g);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fused
}
criterion_main!(benches);
