//! Criterion: solver wall time vs problem size.
//!
//! The paper reports "execution time of the algorithm in the order of a few
//! seconds" for GEANT-scale instances (2000-iteration cap). These benches
//! measure the reproduction's solve time on the reference task and how it
//! scales with topology size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, MeasurementTask, PlacementConfig};
use nws_routing::{OdPair, Router};
use nws_topo::random::ring_with_chords;
use nws_traffic::demand::DemandMatrix;
use std::hint::black_box;

/// A synthetic task on an `n`-PoP ring-with-chords backbone.
fn synthetic_task(n: usize) -> MeasurementTask {
    let topo = ring_with_chords(n, n / 2, 99);
    let ingress = topo
        .node_ids()
        .max_by_key(|&v| topo.out_links(v).count())
        .expect("nodes exist");
    let router = Router::new(&topo);
    let mut tracked = Vec::new();
    for dst in topo.node_ids() {
        if dst != ingress && router.path(OdPair::new(ingress, dst)).is_some() {
            // Deterministic spread of sizes over two orders of magnitude.
            let size = 3_000.0 * (1.0 + dst.index() as f64 * 7.0 % 97.0) * 300.0 / 97.0;
            tracked.push((dst, size));
        }
    }
    drop(router);
    let bg = DemandMatrix::gravity_capacity_weighted(&topo, 3e8, 0.5, 5).link_loads(&topo);
    let total: f64 = tracked.iter().map(|&(_, s)| s).sum();
    let mut b = MeasurementTask::builder(topo);
    for (dst, size) in tracked {
        let od = OdPair::new(ingress, dst);
        b = b.track(format!("F{}", dst.index()), od, size);
    }
    b.background_loads(&bg)
        .theta(total * 0.05)
        .build()
        .expect("valid")
}

fn bench_janet(c: &mut Criterion) {
    let task = janet_task();
    let cfg = PlacementConfig::default();
    c.bench_function("solve_placement/geant_janet", |b| {
        b.iter(|| solve_placement(black_box(&task), &cfg).expect("feasible"))
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_placement/scaling");
    for &n in &[10usize, 20, 40, 80] {
        let task = synthetic_task(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &task, |b, task| {
            b.iter(|| {
                solve_placement(black_box(task), &PlacementConfig::default()).expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_janet, bench_scaling
}
criterion_main!(benches);
