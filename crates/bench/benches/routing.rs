//! Criterion: SPF and routing-matrix construction throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nws_routing::{OdPair, RoutingMatrix, Spf};
use nws_topo::geant;
use nws_topo::random::ring_with_chords;
use std::hint::black_box;

fn bench_spf_geant(c: &mut Criterion) {
    let topo = geant();
    let uk = topo.require_node("UK").expect("UK");
    c.bench_function("spf/geant_from_uk", |b| {
        b.iter(|| Spf::compute(black_box(&topo), uk))
    });
}

fn bench_spf_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("spf/scaling");
    for &n in &[50usize, 100, 200, 400] {
        let topo = ring_with_chords(n, n, 3);
        let src = topo.node_ids().next().expect("nodes");
        group.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| Spf::compute(black_box(topo), src))
        });
    }
    group.finish();
}

fn bench_routing_matrix(c: &mut Criterion) {
    let topo = geant();
    let janet = topo.require_node("JANET").expect("JANET");
    let ods: Vec<OdPair> = topo
        .node_ids()
        .filter(|&d| d != janet)
        .map(|d| OdPair::new(janet, d))
        .collect();
    c.bench_function("routing_matrix/geant_all_dsts", |b| {
        b.iter(|| RoutingMatrix::build(black_box(&topo), black_box(&ods)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spf_geant, bench_spf_scaling, bench_routing_matrix
}
criterion_main!(benches);
