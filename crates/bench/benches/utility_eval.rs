//! Criterion: utility and objective evaluation — the solver's inner-loop
//! cost drivers.

use criterion::{criterion_group, criterion_main, Criterion};
use nws_core::scenarios::janet_task;
use nws_core::{build_problem, PlacementObjective, RateModel, ReducedIndex, SreUtility, Utility};
use nws_solver::Objective;
use std::hint::black_box;

fn bench_utility(c: &mut Criterion) {
    let u = SreUtility::from_mean_size(150_000.0);
    c.bench_function("sre_utility/value_d1_d2", |b| {
        b.iter(|| {
            let rho = black_box(0.0031);
            black_box((u.value(rho), u.d1(rho), u.d2(rho)))
        })
    });
}

fn bench_objective(c: &mut Criterion) {
    let task = janet_task();
    let index = ReducedIndex::new(&task);
    let problem = build_problem(&task, &index).expect("feasible");
    let p = problem.feasible_start();
    let mut group = c.benchmark_group("placement_objective");
    for (label, model) in [
        ("approx", RateModel::Approximate),
        ("exact", RateModel::Exact),
    ] {
        let obj = PlacementObjective::new(&task, &index, model);
        group.bench_function(format!("gradient/{label}"), |b| {
            b.iter(|| black_box(obj.gradient(black_box(&p))))
        });
        group.bench_function(format!("value/{label}"), |b| {
            b.iter(|| black_box(obj.value(black_box(&p))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_utility, bench_objective
}
criterion_main!(benches);
