//! Criterion: sampling-simulation throughput (Binomial variates, flow-level
//! monitors, Monte-Carlo accuracy evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nws_core::scenarios::janet_task;
use nws_core::{evaluate_accuracy, solve_placement, PlacementConfig};
use nws_traffic::dist::Binomial;
use nws_traffic::flows::{generate_flows, FlowMixParams};
use nws_traffic::netflow::Monitor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sample");
    // BINV regime and normal-approximation regime.
    for (label, n, p) in [
        ("binv_n1e3", 1_000u64, 0.01),
        ("normal_n1e7", 10_000_000, 0.001),
    ] {
        let b = Binomial::new(n, p);
        group.bench_function(label, |bench| {
            let mut rng = StdRng::seed_from_u64(1);
            bench.iter(|| black_box(b.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_flow_monitor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let flows = generate_flows(
        &mut rng,
        0,
        1_000_000,
        0.0,
        300.0,
        &FlowMixParams::default(),
    );
    let monitor = Monitor::new(0.01);
    c.bench_function("netflow_monitor/sample_1M_pkts", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(monitor.sample_flows(&mut rng, &flows).len()))
    });
}

fn bench_accuracy_eval(c: &mut Criterion) {
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).expect("feasible");
    let mut group = c.benchmark_group("evaluate_accuracy");
    for &runs in &[20usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(runs), &runs, |b, &runs| {
            b.iter(|| black_box(evaluate_accuracy(&task, &sol, runs, 4)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_binomial, bench_flow_monitor, bench_accuracy_eval
}
criterion_main!(benches);
