//! Gravity-model traffic matrices and link-load derivation.

use crate::dist::LogNormal;
use nws_routing::{OdPair, Router};
use nws_topo::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A node-to-node demand matrix in packets per measurement interval.
///
/// The paper's optimizer needs realistic per-link loads `U_i` — the cross
/// traffic that competes with the tracked OD pairs for sampling capacity.
/// A *gravity model* (demand proportional to the product of endpoint
/// "masses") with lognormal mass jitter is the standard synthetic stand-in
/// for a backbone traffic matrix and reproduces its key property: a few
/// hot-hot pairs dominate while most pairs are small.
#[derive(Debug, Clone)]
pub struct DemandMatrix {
    n: usize,
    /// Row-major `n × n` demands; diagonal is zero.
    demands: Vec<f64>,
}

impl DemandMatrix {
    /// Creates an all-zero demand matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        DemandMatrix {
            n,
            demands: vec![0.0; n * n],
        }
    }

    /// Generates a gravity-model matrix over the *internal* (non-external)
    /// nodes of `topo`, scaled so all demands sum to `total` packets per
    /// interval.
    ///
    /// Node masses are i.i.d. lognormal with coefficient of variation
    /// `mass_cv`; demands are `total · m_s·m_t / Σ_{u≠v} m_u·m_v`. External
    /// nodes (customer attachments like JANET) get zero gravity demand —
    /// their traffic is injected explicitly by the measurement task.
    ///
    /// # Panics
    /// Panics if `total` is not positive/finite, `mass_cv` is negative, or
    /// `topo` has fewer than two internal nodes.
    pub fn gravity(topo: &Topology, total: f64, mass_cv: f64, seed: u64) -> Self {
        assert!(total.is_finite() && total > 0.0, "total must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = LogNormal::from_mean_cv(1.0, mass_cv.max(0.0));
        let masses: Vec<f64> = topo
            .node_ids()
            .map(|id| {
                if topo.node(id).is_external() {
                    0.0
                } else {
                    dist.sample(&mut rng)
                }
            })
            .collect();
        Self::from_masses(total, &masses)
    }

    /// Like [`DemandMatrix::gravity`], but node masses are proportional to
    /// the node's attached capacity (sum of outgoing link line rates) before
    /// the lognormal jitter is applied.
    ///
    /// Capacity-weighted masses reproduce a structural property of real
    /// backbones that plain i.i.d. masses miss: big multi-homed PoPs (UK,
    /// DE, FR) both source and sink most traffic, so core links run far
    /// hotter than stub links — the load asymmetry the paper's optimizer
    /// exploits when it samples small OD pairs on quiet downstream links.
    ///
    /// # Panics
    /// Same contract as [`DemandMatrix::gravity`].
    pub fn gravity_capacity_weighted(topo: &Topology, total: f64, mass_cv: f64, seed: u64) -> Self {
        assert!(total.is_finite() && total > 0.0, "total must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = LogNormal::from_mean_cv(1.0, mass_cv.max(0.0));
        let masses: Vec<f64> = topo
            .node_ids()
            .map(|id| {
                if topo.node(id).is_external() {
                    return 0.0;
                }
                let capacity: f64 = topo
                    .out_links(id)
                    .map(|l| topo.link(l).capacity_mbps())
                    .sum();
                capacity * dist.sample(&mut rng)
            })
            .collect();
        Self::from_masses(total, &masses)
    }

    /// Gravity matrix from caller-supplied base masses (e.g. known PoP
    /// sizes), each jittered by a lognormal factor with coefficient of
    /// variation `mass_cv`. A zero mass excludes the node entirely.
    ///
    /// # Panics
    /// Panics if `total` is not positive/finite, `masses` doesn't match the
    /// topology, a mass is negative, or fewer than two masses are positive.
    pub fn gravity_with_masses(
        topo: &Topology,
        total: f64,
        base_masses: &[f64],
        mass_cv: f64,
        seed: u64,
    ) -> Self {
        assert!(total.is_finite() && total > 0.0, "total must be positive");
        assert_eq!(
            base_masses.len(),
            topo.num_nodes(),
            "mass vector length mismatch"
        );
        assert!(base_masses.iter().all(|&m| m >= 0.0), "masses must be ≥ 0");
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = LogNormal::from_mean_cv(1.0, mass_cv.max(0.0));
        let masses: Vec<f64> = base_masses
            .iter()
            .map(|&m| m * dist.sample(&mut rng))
            .collect();
        Self::from_masses(total, &masses)
    }

    /// Builds the gravity matrix from explicit node masses (zero mass =
    /// no demand to/from that node).
    fn from_masses(total: f64, masses: &[f64]) -> Self {
        let n = masses.len();
        let internal = masses.iter().filter(|&&m| m > 0.0).count();
        assert!(
            internal >= 2,
            "gravity model needs at least two internal nodes"
        );
        let mut dm = DemandMatrix::zeros(n);
        let mut weight_sum = 0.0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    weight_sum += masses[s] * masses[t];
                }
            }
        }
        for s in 0..n {
            for t in 0..n {
                if s != t && masses[s] > 0.0 && masses[t] > 0.0 {
                    dm.demands[s * n + t] = total * masses[s] * masses[t] / weight_sum;
                }
            }
        }
        dm
    }

    /// Number of nodes this matrix is defined over.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t` in packets per interval.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn demand(&self, s: NodeId, t: NodeId) -> f64 {
        assert!(
            s.index() < self.n && t.index() < self.n,
            "node id out of range"
        );
        self.demands[s.index() * self.n + t.index()]
    }

    /// Sets the demand from `s` to `t`.
    ///
    /// # Panics
    /// Panics if ids are out of range, `s == t`, or `value` is negative.
    pub fn set_demand(&mut self, s: NodeId, t: NodeId, value: f64) {
        assert!(
            s.index() < self.n && t.index() < self.n,
            "node id out of range"
        );
        assert!(s != t, "diagonal demands are not allowed");
        assert!(value.is_finite() && value >= 0.0, "demand must be ≥ 0");
        self.demands[s.index() * self.n + t.index()] = value;
    }

    /// Total demand across all OD pairs.
    pub fn total(&self) -> f64 {
        self.demands.iter().sum()
    }

    /// Multiplies every demand by `factor` (diurnal scaling, what-if load).
    ///
    /// # Panics
    /// Panics if `factor` is negative or non-finite.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be ≥ 0");
        for d in &mut self.demands {
            *d *= factor;
        }
    }

    /// All OD pairs with positive demand.
    pub fn active_pairs(&self) -> Vec<(OdPair, f64)> {
        let mut out = Vec::new();
        for s in 0..self.n {
            for t in 0..self.n {
                let d = self.demands[s * self.n + t];
                if d > 0.0 {
                    out.push((OdPair::new(NodeId::from_index(s), NodeId::from_index(t)), d));
                }
            }
        }
        out
    }

    /// Routes every demand over `topo` (shortest path, even ECMP split) and
    /// returns the per-link load vector in packets per interval.
    ///
    /// # Panics
    /// Panics if the matrix dimension does not match `topo`.
    pub fn link_loads(&self, topo: &Topology) -> Vec<f64> {
        assert_eq!(self.n, topo.num_nodes(), "matrix does not match topology");
        let router = Router::new(topo);
        let mut loads = vec![0.0; topo.num_links()];
        for (od, d) in self.active_pairs() {
            for (l, f) in router.ecmp_fractions(od) {
                loads[l.index()] += f * d;
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::geant;

    #[test]
    fn gravity_totals_and_structure() {
        let t = geant();
        let dm = DemandMatrix::gravity(&t, 1e6, 1.0, 42);
        assert!((dm.total() - 1e6).abs() < 1e-6 * 1e6);
        // Diagonal zero; JANET (external) row/col zero.
        let janet = t.require_node("JANET").unwrap();
        for id in t.node_ids() {
            assert_eq!(dm.demand(id, id), 0.0);
            assert_eq!(dm.demand(janet, id), 0.0);
            assert_eq!(dm.demand(id, janet), 0.0);
        }
    }

    #[test]
    fn gravity_is_deterministic_per_seed() {
        let t = geant();
        let a = DemandMatrix::gravity(&t, 1e5, 0.8, 7);
        let b = DemandMatrix::gravity(&t, 1e5, 0.8, 7);
        let c = DemandMatrix::gravity(&t, 1e5, 0.8, 8);
        let uk = t.require_node("UK").unwrap();
        let fr = t.require_node("FR").unwrap();
        assert_eq!(a.demand(uk, fr), b.demand(uk, fr));
        assert_ne!(a.demand(uk, fr), c.demand(uk, fr));
    }

    #[test]
    fn gravity_skewed_by_cv() {
        let t = geant();
        let dm = DemandMatrix::gravity(&t, 1e6, 2.0, 3);
        let pairs = dm.active_pairs();
        let mut vals: Vec<f64> = pairs.iter().map(|&(_, d)| d).collect();
        vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top 10% of pairs carry well over 10% of traffic.
        let top = vals.iter().take(vals.len() / 10).sum::<f64>();
        assert!(
            top / dm.total() > 0.3,
            "top-decile share {}",
            top / dm.total()
        );
    }

    #[test]
    fn set_and_scale() {
        let t = geant();
        let mut dm = DemandMatrix::zeros(t.num_nodes());
        let uk = t.require_node("UK").unwrap();
        let fr = t.require_node("FR").unwrap();
        dm.set_demand(uk, fr, 100.0);
        assert_eq!(dm.total(), 100.0);
        dm.scale(2.5);
        assert_eq!(dm.demand(uk, fr), 250.0);
        assert_eq!(dm.active_pairs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "diagonal demands")]
    fn diagonal_set_rejected() {
        let t = geant();
        let mut dm = DemandMatrix::zeros(t.num_nodes());
        let uk = t.require_node("UK").unwrap();
        dm.set_demand(uk, uk, 1.0);
    }

    #[test]
    fn link_loads_conserve_volume() {
        // Each demand contributes (path length)·demand to total link volume;
        // verify per-link accumulation equals per-OD path sums.
        let t = geant();
        let dm = DemandMatrix::gravity(&t, 1e5, 1.0, 11);
        let loads = dm.link_loads(&t);
        assert_eq!(loads.len(), t.num_links());
        let total_link_volume: f64 = loads.iter().sum();
        let router = Router::new(&t);
        let expected: f64 = dm
            .active_pairs()
            .iter()
            .map(|&(od, d)| {
                router
                    .ecmp_fractions(od)
                    .iter()
                    .map(|&(_, f)| f * d)
                    .sum::<f64>()
            })
            .sum();
        assert!((total_link_volume - expected).abs() < 1e-6 * expected);
        assert!(loads.iter().all(|&l| l >= 0.0));
        assert!(total_link_volume > 0.0);
    }
}
