//! Flow-record export semantics (the router side of §V-A).
//!
//! GEANT's routers export records for all active flows every minute; a flow
//! terminates on FIN or after a 30-second idle timeout. A single transport
//! flow therefore appears as *several* records, which the collector has to
//! re-aggregate. This module models exactly that slicing so the
//! [`crate::collector`] post-processing (and its failure modes) can be
//! exercised realistically.

use crate::flows::{Flow, FlowKey};

/// Export configuration mirroring the paper's GEANT setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExportConfig {
    /// Interval between exports of active-flow state (paper: 60 s).
    pub export_interval: f64,
    /// Idle timeout that terminates a flow record (paper: 30 s).
    pub idle_timeout: f64,
}

impl Default for ExportConfig {
    fn default() -> Self {
        ExportConfig {
            export_interval: 60.0,
            idle_timeout: 30.0,
        }
    }
}

/// One exported record: a slice of a flow as seen between two exports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedRecord {
    /// The 5-tuple key.
    pub key: FlowKey,
    /// OD index carried through from the generating flow.
    pub od_index: usize,
    /// Timestamp of the first packet covered by this record.
    pub start: f64,
    /// Timestamp of the last packet covered by this record.
    pub end: f64,
    /// Packets covered by this record.
    pub packets: u64,
    /// Bytes covered by this record.
    pub bytes: u64,
    /// Export (wall-clock) time at which the router emitted the record.
    pub export_time: f64,
}

/// Slices `flows` into per-export records.
///
/// A flow with span `[start, end]` is modelled as emitting packets uniformly
/// over its duration. At every export tick covering part of the flow, the
/// packets that arrived since the previous tick are flushed as one record;
/// flows idle past [`ExportConfig::idle_timeout`] terminate early (their
/// remainder is flushed at the next tick). Packet/byte totals are conserved
/// exactly: rounding error in per-slice packet counts is pushed into the
/// final slice.
///
/// # Panics
/// Panics if the config has non-positive intervals.
pub fn export_flows(flows: &[Flow], config: &ExportConfig) -> Vec<ExportedRecord> {
    assert!(
        config.export_interval > 0.0,
        "export interval must be positive"
    );
    assert!(config.idle_timeout > 0.0, "idle timeout must be positive");
    let mut records = Vec::new();
    for f in flows {
        slice_flow(f, config, &mut records);
    }
    // Stable ordering by export time, then start (collector-friendly).
    records.sort_by(|a, b| {
        (a.export_time, a.start)
            .partial_cmp(&(b.export_time, b.start))
            .expect("finite timestamps")
    });
    records
}

fn slice_flow(f: &Flow, config: &ExportConfig, out: &mut Vec<ExportedRecord>) {
    let duration = (f.end - f.start).max(0.0);
    // First export tick at or after the flow's start.
    let first_tick = (f.start / config.export_interval).floor() * config.export_interval
        + config.export_interval;

    let mut emitted_packets = 0u64;
    let mut emitted_bytes = 0u64;
    let mut slice_start = f.start;
    let mut tick = first_tick;
    loop {
        let slice_end = tick.min(f.end);
        let done = slice_end >= f.end;
        // Fraction of the flow covered up to slice_end.
        let frac = if duration == 0.0 {
            1.0
        } else {
            ((slice_end - f.start) / duration).clamp(0.0, 1.0)
        };
        let (pkts_cum, bytes_cum) = if done {
            (f.packets, f.bytes) // exact conservation on the last slice
        } else {
            (
                (f.packets as f64 * frac).floor() as u64,
                (f.bytes as f64 * frac).floor() as u64,
            )
        };
        let pkts = pkts_cum - emitted_packets;
        let bytes = bytes_cum - emitted_bytes;
        if pkts > 0 || done {
            out.push(ExportedRecord {
                key: f.key,
                od_index: f.od_index,
                start: slice_start,
                end: slice_end,
                packets: pkts,
                bytes,
                export_time: tick,
            });
            emitted_packets += pkts;
            emitted_bytes += bytes;
            slice_start = slice_end;
        }
        if done {
            break;
        }
        tick += config.export_interval;
        // Idle-timeout model: uniform emission means a flow is never idle
        // mid-life; the timeout matters for the tail beyond the last packet,
        // which our flows do not model explicitly — the final slice flushes
        // at the next tick regardless, matching a timeout-terminated record.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{generate_flows, FlowMixParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flows(seed: u64, pkts: u64) -> Vec<Flow> {
        generate_flows(
            &mut StdRng::seed_from_u64(seed),
            0,
            pkts,
            0.0,
            300.0,
            &FlowMixParams::default(),
        )
    }

    #[test]
    fn packet_and_byte_totals_conserved() {
        let fl = flows(1, 100_000);
        let recs = export_flows(&fl, &ExportConfig::default());
        let total_pkts: u64 = recs.iter().map(|r| r.packets).sum();
        let total_bytes: u64 = recs.iter().map(|r| r.bytes).sum();
        assert_eq!(total_pkts, fl.iter().map(|f| f.packets).sum::<u64>());
        assert_eq!(total_bytes, fl.iter().map(|f| f.bytes).sum::<u64>());
    }

    #[test]
    fn long_flows_produce_multiple_records() {
        // A 100k-packet flow lasts 100 s (1k pkt/s model) and must span
        // multiple 60 s export ticks.
        let f = Flow {
            key: crate::flows::FlowKey {
                src_addr: 1,
                dst_addr: 2,
                src_port: 1234,
                dst_port: 80,
                proto: crate::flows::Protocol::Tcp,
            },
            od_index: 0,
            start: 10.0,
            end: 110.0,
            packets: 100_000,
            bytes: 70_000_000,
        };
        let recs = export_flows(std::slice::from_ref(&f), &ExportConfig::default());
        assert!(
            recs.len() >= 2,
            "expected multiple slices, got {}",
            recs.len()
        );
        assert_eq!(recs.iter().map(|r| r.packets).sum::<u64>(), 100_000);
        // Records tile the flow's lifetime without overlap.
        for w in recs.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-9);
        }
        assert_eq!(recs.first().unwrap().start, 10.0);
        assert!((recs.last().unwrap().end - 110.0).abs() < 1e-9);
    }

    #[test]
    fn short_flow_single_record_at_next_tick() {
        let f = Flow {
            key: crate::flows::FlowKey {
                src_addr: 1,
                dst_addr: 2,
                src_port: 9999,
                dst_port: 443,
                proto: crate::flows::Protocol::Tcp,
            },
            od_index: 3,
            start: 61.0,
            end: 61.5,
            packets: 12,
            bytes: 8_400,
        };
        let recs = export_flows(std::slice::from_ref(&f), &ExportConfig::default());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 12);
        assert_eq!(recs[0].export_time, 120.0);
        assert_eq!(recs[0].od_index, 3);
    }

    #[test]
    fn records_sorted_by_export_time() {
        let fl = flows(2, 50_000);
        let recs = export_flows(&fl, &ExportConfig::default());
        for w in recs.windows(2) {
            assert!(w[0].export_time <= w[1].export_time);
        }
    }

    #[test]
    fn zero_duration_flow_handled() {
        let f = Flow {
            key: crate::flows::FlowKey {
                src_addr: 5,
                dst_addr: 6,
                src_port: 1,
                dst_port: 53,
                proto: crate::flows::Protocol::Udp,
            },
            od_index: 0,
            start: 30.0,
            end: 30.0,
            packets: 1,
            bytes: 64,
        };
        let recs = export_flows(std::slice::from_ref(&f), &ExportConfig::default());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 1);
    }

    #[test]
    #[should_panic(expected = "export interval must be positive")]
    fn bad_config_rejected() {
        let _ = export_flows(
            &[],
            &ExportConfig {
                export_interval: 0.0,
                idle_timeout: 30.0,
            },
        );
    }
}
