//! Size estimation from sampled counts, and the paper's error metrics.

/// Inverts a sampled packet count to a size estimate: `x / ρ`.
///
/// This is the unbiased Horvitz–Thompson style estimator the paper analyzes
/// (§IV-C): `E[X/ρ | S] = S` when `X ~ Binomial(S, ρ)`.
///
/// # Panics
/// Panics unless `ρ ∈ (0, 1]`.
pub fn invert(sampled: u64, rho: f64) -> f64 {
    assert!(
        rho.is_finite() && rho > 0.0 && rho <= 1.0,
        "effective rate must be in (0,1], got {rho}"
    );
    sampled as f64 / rho
}

/// Squared relative error `((x/ρ − s)/s)²` of one estimate (paper eq. (9)).
///
/// # Panics
/// Panics if `actual == 0` (relative error undefined).
pub fn squared_relative_error(estimate: f64, actual: f64) -> f64 {
    assert!(actual > 0.0, "actual size must be positive");
    let rel = (estimate - actual) / actual;
    rel * rel
}

/// The paper's accuracy metric `1 − |x/ρ − s| / s` (§V-B). Negative values
/// (estimate off by more than 100 %) are possible and *not* clamped — the
/// evaluation wants to see them.
///
/// # Panics
/// Panics if `actual == 0`.
pub fn accuracy(estimate: f64, actual: f64) -> f64 {
    assert!(actual > 0.0, "actual size must be positive");
    1.0 - (estimate - actual).abs() / actual
}

/// Analytic expected squared relative error of the inverted binomial
/// estimator: `E[SRE](ρ) = (1 − ρ)/ρ · E[1/S]` (paper §IV-C).
///
/// `inv_mean_size` is `c = E[1/S]` of the OD-size distribution.
///
/// # Panics
/// Panics unless `ρ ∈ (0, 1]` and `inv_mean_size ≥ 0`.
pub fn expected_sre(rho: f64, inv_mean_size: f64) -> f64 {
    assert!(
        rho.is_finite() && rho > 0.0 && rho <= 1.0,
        "effective rate must be in (0,1], got {rho}"
    );
    assert!(inv_mean_size >= 0.0, "E[1/S] must be ≥ 0");
    (1.0 - rho) / rho * inv_mean_size
}

/// A two-sided confidence interval for an inverted size estimate.
///
/// Based on the normal approximation to `X ~ Binomial(S, ρ)` with the
/// estimator's own variance estimate: `Ŝ = x/ρ`,
/// `Var(Ŝ) ≈ Ŝ·(1−ρ)/ρ`, so the interval is `Ŝ ± z·√(Ŝ(1−ρ)/ρ)`.
/// The lower bound is clamped at 0.
///
/// `z` is the standard-normal quantile for the desired coverage
/// (1.96 → 95 %, 2.576 → 99 %).
///
/// # Panics
/// Panics unless `ρ ∈ (0, 1]` and `z ≥ 0`.
pub fn confidence_interval(sampled: u64, rho: f64, z: f64) -> (f64, f64) {
    assert!(
        rho.is_finite() && rho > 0.0 && rho <= 1.0,
        "effective rate must be in (0,1], got {rho}"
    );
    assert!(z.is_finite() && z >= 0.0, "z must be ≥ 0, got {z}");
    let est = sampled as f64 / rho;
    let half = z * (est * (1.0 - rho) / rho).sqrt();
    ((est - half).max(0.0), est + half)
}

/// Estimates `c = E[1/S]` from historical per-interval OD sizes — the input
/// the utility function needs (paper §IV-C). For fluctuating sizes,
/// `E[1/S] > 1/E[S]` (Jensen), so using observed intervals rather than the
/// mean size is the honest estimate.
///
/// Non-positive observations are skipped (an empty interval contributes no
/// information about relative error).
///
/// # Panics
/// Panics if no positive observation remains.
pub fn estimate_inv_mean_size(interval_sizes: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &s in interval_sizes {
        if s > 0.0 && s.is_finite() {
            sum += 1.0 / s;
            n += 1;
        }
    }
    assert!(n > 0, "need at least one positive interval size");
    sum / n as f64
}

/// Summary statistics of repeated estimation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Mean of the values.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single value).
    pub std: f64,
}

impl RunStats {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn from(values: &[f64]) -> RunStats {
        assert!(!values.is_empty(), "need at least one value");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let std = if values.len() > 1 {
            (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        RunStats {
            mean,
            min,
            max,
            std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Binomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invert_is_unbiased_empirically() {
        let mut rng = StdRng::seed_from_u64(31);
        let s = 100_000u64;
        let rho = 0.004;
        let b = Binomial::new(s, rho);
        let runs = 2000;
        let mean_est = (0..runs)
            .map(|_| invert(b.sample(&mut rng), rho))
            .sum::<f64>()
            / runs as f64;
        assert!(
            (mean_est / s as f64 - 1.0).abs() < 0.01,
            "mean estimate {mean_est}"
        );
    }

    #[test]
    fn empirical_sre_matches_analytic() {
        // For fixed S, E[SRE] = (1−ρ)/(ρ·S).
        let mut rng = StdRng::seed_from_u64(32);
        let s = 50_000u64;
        let rho = 0.002;
        let b = Binomial::new(s, rho);
        let runs = 5000;
        let mean_sre = (0..runs)
            .map(|_| squared_relative_error(invert(b.sample(&mut rng), rho), s as f64))
            .sum::<f64>()
            / runs as f64;
        let analytic = expected_sre(rho, 1.0 / s as f64);
        assert!(
            (mean_sre / analytic - 1.0).abs() < 0.1,
            "empirical {mean_sre} vs analytic {analytic}"
        );
    }

    #[test]
    fn accuracy_metric() {
        assert_eq!(accuracy(100.0, 100.0), 1.0);
        assert!((accuracy(90.0, 100.0) - 0.9).abs() < 1e-12);
        assert!((accuracy(120.0, 100.0) - 0.8).abs() < 1e-12);
        // Can go negative for terrible estimates; not clamped.
        assert!(accuracy(300.0, 100.0) < 0.0);
    }

    #[test]
    fn expected_sre_monotone_decreasing_in_rho() {
        let c = 1e-4;
        let mut last = f64::INFINITY;
        for rho in [0.0005, 0.001, 0.01, 0.1, 1.0] {
            let e = expected_sre(rho, c);
            assert!(e < last, "SRE should decrease with rho");
            last = e;
        }
        assert_eq!(expected_sre(1.0, c), 0.0);
    }

    #[test]
    #[should_panic(expected = "effective rate must be in (0,1]")]
    fn invert_zero_rho_panics() {
        let _ = invert(5, 0.0);
    }

    #[test]
    #[should_panic(expected = "actual size must be positive")]
    fn accuracy_zero_actual_panics() {
        let _ = accuracy(1.0, 0.0);
    }

    #[test]
    fn confidence_interval_covers_truth() {
        // Empirical coverage of the 95% interval over repeated sampling.
        let mut rng = StdRng::seed_from_u64(33);
        let s = 200_000u64;
        let rho = 0.003;
        let b = Binomial::new(s, rho);
        let runs = 2000;
        let covered = (0..runs)
            .filter(|_| {
                let x = b.sample(&mut rng);
                let (lo, hi) = confidence_interval(x, rho, 1.96);
                (lo..=hi).contains(&(s as f64))
            })
            .count();
        let coverage = covered as f64 / runs as f64;
        assert!(
            (coverage - 0.95).abs() < 0.02,
            "95% CI empirical coverage {coverage}"
        );
    }

    #[test]
    fn confidence_interval_edges() {
        // Full sampling: zero-width interval at the truth.
        let (lo, hi) = confidence_interval(1000, 1.0, 1.96);
        assert_eq!(lo, 1000.0);
        assert_eq!(hi, 1000.0);
        // Zero samples: collapses to [0, 0] (variance estimate is 0 too —
        // the caller should treat unobserved ODs separately).
        let (lo, hi) = confidence_interval(0, 0.01, 1.96);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 0.0);
        // Lower bound clamped at zero for small counts.
        let (lo, _) = confidence_interval(1, 0.0001, 2.576);
        assert_eq!(lo, 0.0);
    }

    #[test]
    #[should_panic(expected = "z must be ≥ 0")]
    fn negative_z_rejected() {
        let _ = confidence_interval(1, 0.5, -1.0);
    }

    #[test]
    fn inv_mean_size_estimation() {
        // Constant sizes: c = 1/S exactly.
        assert!((estimate_inv_mean_size(&[500.0; 8]) - 1.0 / 500.0).abs() < 1e-15);
        // Fluctuating sizes: strictly above 1/mean (Jensen).
        let sizes = [100.0, 1000.0, 10_000.0];
        let c = estimate_inv_mean_size(&sizes);
        let mean = sizes.iter().sum::<f64>() / 3.0;
        assert!(c > 1.0 / mean, "c {c} should exceed 1/mean {}", 1.0 / mean);
        // Zeros and non-finite entries skipped.
        let with_gaps = [0.0, f64::NAN, 500.0];
        assert!((estimate_inv_mean_size(&with_gaps) - 1.0 / 500.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one positive interval size")]
    fn inv_mean_size_needs_data() {
        let _ = estimate_inv_mean_size(&[0.0, -1.0]);
    }

    #[test]
    fn run_stats() {
        let s = RunStats::from(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let single = RunStats::from(&[7.0]);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "need at least one value")]
    fn empty_stats_panics() {
        let _ = RunStats::from(&[]);
    }
}
