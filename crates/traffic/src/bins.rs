//! Measurement-interval binning of flow records.
//!
//! The paper aggregates flow records into 5-minute bins keyed by flow *start*
//! time (§V-A), deliberately tolerating flows that straddle bin edges — the
//! same convention is used here.

use crate::flows::Flow;

/// A fixed grid of measurement intervals starting at `t0`, each `width`
/// seconds long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinGrid {
    t0: f64,
    width: f64,
    num_bins: usize,
}

impl BinGrid {
    /// Creates a grid of `num_bins` intervals of `width` seconds from `t0`.
    ///
    /// # Panics
    /// Panics unless `width > 0` and `num_bins > 0`.
    pub fn new(t0: f64, width: f64, num_bins: usize) -> Self {
        assert!(width.is_finite() && width > 0.0, "width must be positive");
        assert!(num_bins > 0, "need at least one bin");
        BinGrid {
            t0,
            width,
            num_bins,
        }
    }

    /// A standard grid of 5-minute paper intervals from time 0.
    pub fn paper_intervals(num_bins: usize) -> Self {
        Self::new(0.0, crate::MEASUREMENT_INTERVAL_SECS, num_bins)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Interval width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The bin index of timestamp `t`, or `None` if outside the grid.
    pub fn bin_of(&self, t: f64) -> Option<usize> {
        if t < self.t0 {
            return None;
        }
        let idx = ((t - self.t0) / self.width).floor() as usize;
        (idx < self.num_bins).then_some(idx)
    }

    /// The `[start, end)` time span of bin `b`.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn span(&self, b: usize) -> (f64, f64) {
        assert!(b < self.num_bins, "bin {b} out of range");
        let start = self.t0 + b as f64 * self.width;
        (start, start + self.width)
    }

    /// Partitions flow indices by the bin of their start time; flows outside
    /// the grid are dropped (as a collector would drop records outside its
    /// collection window).
    pub fn bin_flows(&self, flows: &[Flow]) -> Vec<Vec<usize>> {
        let mut bins = vec![Vec::new(); self.num_bins];
        for (i, f) in flows.iter().enumerate() {
            if let Some(b) = self.bin_of(f.start) {
                bins[b].push(i);
            }
        }
        bins
    }

    /// Aggregates per-OD packet totals per bin: result `[bin][od] = packets`.
    pub fn od_sizes_per_bin(&self, flows: &[Flow], num_ods: usize) -> Vec<Vec<u64>> {
        let mut out = vec![vec![0u64; num_ods]; self.num_bins];
        for f in flows {
            if let Some(b) = self.bin_of(f.start) {
                assert!(f.od_index < num_ods, "flow od_index out of range");
                out[b][f.od_index] += f.packets;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{generate_flows, FlowMixParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bin_of_edges() {
        let g = BinGrid::new(0.0, 300.0, 3);
        assert_eq!(g.bin_of(0.0), Some(0));
        assert_eq!(g.bin_of(299.999), Some(0));
        assert_eq!(g.bin_of(300.0), Some(1));
        assert_eq!(g.bin_of(899.999), Some(2));
        assert_eq!(g.bin_of(900.0), None);
        assert_eq!(g.bin_of(-1.0), None);
    }

    #[test]
    fn spans() {
        let g = BinGrid::paper_intervals(2);
        assert_eq!(g.span(0), (0.0, 300.0));
        assert_eq!(g.span(1), (300.0, 600.0));
        assert_eq!(g.width(), 300.0);
    }

    #[test]
    #[should_panic(expected = "bin 2 out of range")]
    fn span_out_of_range_panics() {
        let _ = BinGrid::paper_intervals(2).span(2);
    }

    #[test]
    fn flows_partitioned_by_start() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut flows = generate_flows(&mut rng, 0, 10_000, 0.0, 300.0, &FlowMixParams::default());
        flows.extend(generate_flows(
            &mut rng,
            1,
            5_000,
            300.0,
            300.0,
            &FlowMixParams::default(),
        ));
        let g = BinGrid::paper_intervals(2);
        let bins = g.bin_flows(&flows);
        assert_eq!(bins[0].len() + bins[1].len(), flows.len());
        for &i in &bins[0] {
            assert!(flows[i].start < 300.0);
        }
        for &i in &bins[1] {
            assert!(flows[i].start >= 300.0);
        }
    }

    #[test]
    fn od_sizes_aggregate() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut flows = generate_flows(&mut rng, 0, 7_000, 0.0, 300.0, &FlowMixParams::default());
        flows.extend(generate_flows(
            &mut rng,
            1,
            3_000,
            0.0,
            300.0,
            &FlowMixParams::default(),
        ));
        let g = BinGrid::paper_intervals(1);
        let sizes = g.od_sizes_per_bin(&flows, 2);
        assert_eq!(sizes[0][0], 7_000);
        assert_eq!(sizes[0][1], 3_000);
    }

    #[test]
    fn out_of_grid_flows_dropped() {
        let mut rng = StdRng::seed_from_u64(43);
        let flows = generate_flows(&mut rng, 0, 1_000, 900.0, 300.0, &FlowMixParams::default());
        let g = BinGrid::paper_intervals(2); // covers [0, 600) only
        let bins = g.bin_flows(&flows);
        assert!(bins.iter().all(|b| b.is_empty()));
        let sizes = g.od_sizes_per_bin(&flows, 1);
        assert!(sizes.iter().all(|row| row[0] == 0));
    }
}
