//! Lognormal distribution.

use super::binomial::standard_normal;
use rand::Rng;

/// A lognormal distribution: `exp(μ + σ·Z)` with `Z ~ N(0, 1)`.
///
/// Used to jitter gravity-model node masses and OD demands — traffic volumes
/// across OD pairs of a backbone are well described by a lognormal body
/// (multiplicative effects of PoP size, customer count, time of day).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with log-space mean `mu` and log-space standard
    /// deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be ≥ 0, got {sigma}");
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal with the given *linear-space* mean and coefficient
    /// of variation (`cv = std/mean`), which is how traffic engineers think
    /// about demand spread.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `cv ≥ 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(cv.is_finite() && cv >= 0.0, "cv must be ≥ 0");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Log-space mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Linear-space mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positive_support() {
        let d = LogNormal::new(0.0, 2.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn empirical_mean_matches() {
        let d = LogNormal::new(1.0, 0.5);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean / d.mean() - 1.0).abs() < 0.02,
            "mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn from_mean_cv_roundtrip() {
        let d = LogNormal::from_mean_cv(500.0, 0.8);
        assert!((d.mean() - 500.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 300_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean / 500.0 - 1.0).abs() < 0.03, "mean {mean}");
        assert!((cv - 0.8).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let d = LogNormal::new(2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            assert!((d.sample(&mut rng) - 2.0_f64.exp()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be ≥ 0")]
    fn negative_sigma_rejected() {
        let _ = LogNormal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn bad_mean_cv_rejected() {
        let _ = LogNormal::from_mean_cv(0.0, 1.0);
    }
}
