//! Zipf (discrete power-law rank) distribution.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ 1/k^s`.
///
/// Used to skew popularity — which destinations attract traffic, which
/// applications dominate a flow mix. Sampling is by binary search over the
/// precomputed CDF (`O(log n)` per draw after `O(n)` setup).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// CDF over ranks; `cdf[k-1] = P(X ≤ k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be ≥ 0, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k` (1-based).
    ///
    /// # Panics
    /// Panics if `k` is outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k), "rank {k} out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the 0-based
        // index of the first cdf entry ≥ u; +1 converts to 1-based rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_one_most_likely() {
        let z = Zipf::new(10, 1.0);
        for k in 2..=10 {
            assert!(z.pmf(1) > z.pmf(k));
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for k in 1..=5 {
            let emp = counts[k - 1] as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn sample_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=7).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rank 0 out of range")]
    fn pmf_rank_zero_panics() {
        let _ = Zipf::new(3, 1.0).pmf(0);
    }
}
