//! Bounded (truncated) Pareto distribution.

use rand::Rng;

/// A bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
///
/// Internet flow sizes are famously heavy-tailed; a Pareto body with a bound
/// at the transfer-size ceiling of the interval reproduces the mix of mice
/// and elephants that makes per-flow inversion from sampled counts hard for
/// small flows (the effect the paper's utility function quantifies through
/// `E[1/S]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with tail exponent `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`, all finite.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && alpha.is_finite());
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi, got [{lo}, {hi}]");
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        BoundedPareto { lo, hi, alpha }
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Tail exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Analytic mean of the bounded Pareto.
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1: E[X] = ln(h/l) · l·h / (h − l)
            l * h / (h - l) * (h / l).ln()
        } else {
            // Standard truncated-Pareto mean:
            // E[X] = l^α/(1 − (l/h)^α) · α/(α−1) · (l^{1−α} − h^{1−α})
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }

    /// Draws one variate by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        // Inverse CDF of the truncated Pareto:
        // F(x) = (1 − (l/x)^a) / (1 − (l/h)^a)
        let la = l.powf(a);
        let ha = h.powf(a);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a);
        x.clamp(l, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn support_respected() {
        let d = BoundedPareto::new(2.0, 1e6, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=1e6).contains(&x), "out of support: {x}");
        }
    }

    #[test]
    fn heavy_tail_present() {
        // With alpha=1.1 over [1, 1e6], a nontrivial fraction of mass sits
        // far above the median.
        let d = BoundedPareto::new(1.0, 1e6, 1.1);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let big = (0..n).filter(|_| d.sample(&mut rng) > 100.0).count();
        let frac = big as f64 / n as f64;
        // P(X > 100) ≈ (1/100)^1.1 ≈ 0.0063 for the truncated version.
        assert!(frac > 0.003 && frac < 0.012, "tail fraction {frac}");
    }

    #[test]
    fn empirical_mean_close_to_analytic() {
        let d = BoundedPareto::new(10.0, 10_000.0, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let analytic = d.mean();
        assert!(
            (mean / analytic - 1.0).abs() < 0.05,
            "empirical {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn alpha_one_mean() {
        let d = BoundedPareto::new(1.0, 1000.0, 1.0);
        // E = l·h/(h−l)·ln(h/l) = 1000/999 · ln(1000) ≈ 6.9147
        assert!((d.mean() - 6.9146).abs() < 0.01);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 300_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean / d.mean() - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "need 0 < lo < hi")]
    fn invalid_bounds_rejected() {
        let _ = BoundedPareto::new(5.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_rejected() {
        let _ = BoundedPareto::new(1.0, 10.0, 0.0);
    }

    #[test]
    fn smaller_alpha_heavier_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let light = BoundedPareto::new(1.0, 1e6, 2.5);
        let heavy = BoundedPareto::new(1.0, 1e6, 1.05);
        let n = 50_000;
        let mean_light = (0..n).map(|_| light.sample(&mut rng)).sum::<f64>() / n as f64;
        let mean_heavy = (0..n).map(|_| heavy.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            mean_heavy > mean_light * 3.0,
            "{mean_heavy} !>> {mean_light}"
        );
    }
}
