//! Random-variate generators used by the traffic substrate.
//!
//! Only uniform variates are drawn from [`rand`]; every distribution on top
//! is implemented here so its exact algorithm (and thus every experiment) is
//! under this repository's control.

mod binomial;
mod lognormal;
mod pareto;
mod zipf;

pub use binomial::Binomial;
pub use lognormal::LogNormal;
pub use pareto::BoundedPareto;
pub use zipf::Zipf;
