//! Exact-ish Binomial(n, p) sampling.

use rand::Rng;

/// A `Binomial(n, p)` sampler.
///
/// This is the workhorse of packet-sampling simulation: a monitor that
/// samples each of a flow's `n` packets independently with probability `p`
/// observes a `Binomial(n, p)` packet count (paper §IV-C). Flow sizes in a
/// 5-minute backbone interval reach millions of packets, so per-packet
/// Bernoulli draws are not an option.
///
/// Algorithm selection:
/// * `p = 0` / `p = 1` / `n = 0` — degenerate, returned directly;
/// * `p > 1/2` — sampled as `n − Binomial(n, 1−p)`;
/// * small variance (`n·p·(1−p) ≤ 100`) — BINV inversion (exact, `O(n·p)`
///   expected);
/// * large variance — normal approximation with continuity correction
///   (relative error far below the Monte-Carlo noise of any experiment in
///   this workspace at the sizes where it activates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// Variance threshold above which the normal approximation is used.
const NORMAL_APPROX_VARIANCE: f64 = 100.0;

impl Binomial {
    /// Creates a sampler for `Binomial(n, p)`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` or not finite.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p must be in [0,1], got {p}"
        );
        Binomial { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p == 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        if self.p > 0.5 {
            // Mirror to keep the inversion loop short and the normal
            // approximation symmetric.
            return self.n
                - Binomial {
                    n: self.n,
                    p: 1.0 - self.p,
                }
                .sample(rng);
        }
        if self.variance() > NORMAL_APPROX_VARIANCE {
            self.sample_normal_approx(rng)
        } else {
            self.sample_binv(rng)
        }
    }

    /// BINV: invert the CDF by walking the pmf recurrence from k = 0.
    fn sample_binv<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let n = self.n as f64;
        let p = self.p;
        let q = 1.0 - p;
        let s = p / q;
        // q^n: safe from underflow in the regime BINV is selected for
        // (variance ≤ 100 and p ≤ 1/2 bound n·|ln q| well above f64's
        // exponent floor).
        let mut pmf = q.powf(n);
        let mut cdf = pmf;
        let u: f64 = rng.random();
        let mut k = 0u64;
        while u > cdf {
            if k >= self.n {
                // Float round-off pushed the CDF walk past the support.
                return self.n;
            }
            k += 1;
            pmf *= s * (n - (k as f64 - 1.0)) / k as f64;
            cdf += pmf;
        }
        k
    }

    /// Normal approximation with continuity correction, clamped to `[0, n]`.
    fn sample_normal_approx<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let z = standard_normal(rng);
        let x = self.mean() + z * self.variance().sqrt();
        let rounded = (x + 0.5).floor();
        if rounded < 0.0 {
            0
        } else if rounded > self.n as f64 {
            self.n
        } else {
            rounded as u64
        }
    }
}

/// One standard-normal variate via Box–Muller.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB10B)
    }

    #[test]
    fn degenerate_cases() {
        let mut r = rng();
        assert_eq!(Binomial::new(0, 0.3).sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut r), 10);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn invalid_p_rejected() {
        let _ = Binomial::new(10, 1.5);
    }

    #[test]
    fn support_respected_small() {
        let mut r = rng();
        let b = Binomial::new(20, 0.3);
        for _ in 0..2000 {
            assert!(b.sample(&mut r) <= 20);
        }
    }

    #[test]
    fn mean_and_variance_small_regime() {
        // BINV regime: n=100, p=0.05 -> mean 5, var 4.75.
        let mut r = rng();
        let b = Binomial::new(100, 0.05);
        let m = 20_000;
        let samples: Vec<u64> = (0..m).map(|_| b.sample(&mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / m as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / m as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.75).abs() < 0.3, "var {var}");
    }

    #[test]
    fn mean_and_variance_normal_regime() {
        // Normal-approx regime: n=1e6, p=0.001 -> mean 1000, var ~999.
        let mut r = rng();
        let b = Binomial::new(1_000_000, 0.001);
        assert!(b.variance() > 100.0);
        let m = 20_000;
        let samples: Vec<u64> = (0..m).map(|_| b.sample(&mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / m as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / m as f64;
        assert!((mean - 1000.0).abs() < 2.0, "mean {mean}");
        assert!((var / 999.0 - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn mirrored_high_p() {
        let mut r = rng();
        let b = Binomial::new(50, 0.9);
        let m = 20_000;
        let mean = (0..m).map(|_| b.sample(&mut r)).sum::<u64>() as f64 / m as f64;
        assert!((mean - 45.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn deterministic_for_seed() {
        let b = Binomial::new(1000, 0.01);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(b.sample(&mut r1), b.sample(&mut r2));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let m = 50_000;
        let samples: Vec<f64> = (0..m).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / m as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn accessors() {
        let b = Binomial::new(200, 0.25);
        assert_eq!(b.n(), 200);
        assert_eq!(b.p(), 0.25);
        assert_eq!(b.mean(), 50.0);
        assert_eq!(b.variance(), 37.5);
    }
}
