//! # nws-traffic — traffic generation and sampling simulation substrate
//!
//! The paper's evaluation rests on NetFlow data from GEANT that is not
//! publicly available in unsampled form; this crate rebuilds the pipeline
//! synthetically:
//!
//! * [`dist`] — the random-variate library: bounded Pareto (heavy-tailed flow
//!   sizes), Zipf (popularity), lognormal (demand spread), and an exact
//!   [`dist::Binomial`] sampler that is the core of packet-sampling
//!   simulation.
//! * [`demand`] — gravity-model traffic matrices over a topology, producing
//!   realistic per-link background loads.
//! * [`flows`] — NetFlow-style 5-tuple flow records and a flow-level workload
//!   generator that realizes an OD demand as a set of flows.
//! * [`netflow`] — a router-embedded sampling monitor: Bernoulli packet
//!   sampling at rate `p` simulated exactly at flow granularity, with
//!   sampled-record export and count inversion (×1/p).
//! * [`exporter`] / [`collector`] — the §V-A record pipeline: per-minute
//!   export slicing with idle-timeout semantics, 5-tuple re-assembly,
//!   inverse-rate scaling and measurement-interval aggregation.
//! * [`sampling`] — network-wide effective-sampling simulation for an OD pair
//!   observed by multiple monitors (ρ = 1 − Π(1−p_i)), the ground-truth model
//!   behind the paper's accuracy numbers.
//! * [`estimate`] — size estimators, squared relative error, and the paper's
//!   accuracy metric `1 − |x/ρ − s|/s`.
//! * [`bins`] — measurement-interval binning (the paper uses 5-minute bins).
//!
//! All randomness flows through caller-provided [`rand::Rng`] instances, so
//! every experiment in the workspace is reproducible from a seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bins;
pub mod collector;
pub mod demand;
pub mod dist;
pub mod estimate;
pub mod exporter;
pub mod flows;
pub mod netflow;
pub mod sampling;

/// The paper's measurement-interval length in seconds (§V-A: 5-minute bins).
pub const MEASUREMENT_INTERVAL_SECS: f64 = 300.0;
