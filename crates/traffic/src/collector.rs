//! Collector-side post-processing (the analysis side of §V-A).
//!
//! The paper's pipeline: flow records arrive from all routers every minute;
//! the collector (i) aggregates them into 5-minute bins keyed by record
//! start time, (ii) re-assembles multi-record flows by 5-tuple, and (iii)
//! when the feed was sampled, scales packet/byte counts by the inverse
//! sampling rate. The output is the "ground truth" traffic view the
//! evaluation is run against.

use crate::bins::BinGrid;
use crate::exporter::ExportedRecord;
use crate::flows::FlowKey;
use std::collections::HashMap;

/// A flow re-assembled from its exported records.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembledFlow {
    /// The 5-tuple key.
    pub key: FlowKey,
    /// OD index carried through.
    pub od_index: usize,
    /// Earliest record start.
    pub start: f64,
    /// Latest record end.
    pub end: f64,
    /// Total packets across records (already inverse-scaled if requested).
    pub packets: f64,
    /// Total bytes across records (already inverse-scaled if requested).
    pub bytes: f64,
}

/// Re-assembles records into flows by 5-tuple key, optionally inverting a
/// uniform sampling rate (the paper multiplies GEANT's 1/1000 feed by 1000).
///
/// # Panics
/// Panics unless `sampling_rate ∈ (0, 1]`.
pub fn assemble_flows(records: &[ExportedRecord], sampling_rate: f64) -> Vec<AssembledFlow> {
    assert!(
        sampling_rate > 0.0 && sampling_rate <= 1.0,
        "sampling rate must be in (0,1], got {sampling_rate}"
    );
    let scale = 1.0 / sampling_rate;
    let mut by_key: HashMap<(FlowKey, usize), AssembledFlow> = HashMap::new();
    for r in records {
        by_key
            .entry((r.key, r.od_index))
            .and_modify(|f| {
                f.start = f.start.min(r.start);
                f.end = f.end.max(r.end);
                f.packets += r.packets as f64 * scale;
                f.bytes += r.bytes as f64 * scale;
            })
            .or_insert_with(|| AssembledFlow {
                key: r.key,
                od_index: r.od_index,
                start: r.start,
                end: r.end,
                packets: r.packets as f64 * scale,
                bytes: r.bytes as f64 * scale,
            });
    }
    let mut flows: Vec<AssembledFlow> = by_key.into_values().collect();
    flows.sort_by(|a, b| {
        (a.start, a.key.src_addr, a.key.src_port)
            .partial_cmp(&(b.start, b.key.src_addr, b.key.src_port))
            .expect("finite")
    });
    flows
}

/// Aggregates assembled flows into per-bin, per-OD packet totals keyed by
/// flow start time — the collector's measurement-interval view.
pub fn od_sizes_per_bin(flows: &[AssembledFlow], grid: &BinGrid, num_ods: usize) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; num_ods]; grid.num_bins()];
    for f in flows {
        if let Some(b) = grid.bin_of(f.start) {
            assert!(f.od_index < num_ods, "od_index out of range");
            out[b][f.od_index] += f.packets;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exporter::{export_flows, ExportConfig};
    use crate::flows::{generate_flows, FlowMixParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn assembly_reconstructs_original_flows() {
        let mut rng = StdRng::seed_from_u64(3);
        let flows = generate_flows(&mut rng, 0, 200_000, 0.0, 300.0, &FlowMixParams::default());
        let records = export_flows(&flows, &ExportConfig::default());
        assert!(records.len() >= flows.len());
        let assembled = assemble_flows(&records, 1.0);
        assert_eq!(assembled.len(), flows.len());
        let total: f64 = assembled.iter().map(|f| f.packets).sum();
        assert_eq!(total, 200_000.0);
    }

    #[test]
    fn inverse_scaling_applied() {
        let mut rng = StdRng::seed_from_u64(4);
        let flows = generate_flows(&mut rng, 0, 10_000, 0.0, 300.0, &FlowMixParams::default());
        let records = export_flows(&flows, &ExportConfig::default());
        let assembled = assemble_flows(&records, 0.001);
        let total: f64 = assembled.iter().map(|f| f.packets).sum();
        assert!((total - 10_000.0 * 1000.0).abs() < 1e-6);
    }

    #[test]
    fn per_bin_od_totals_follow_flow_starts() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut flows = generate_flows(&mut rng, 0, 40_000, 0.0, 300.0, &FlowMixParams::default());
        flows.extend(generate_flows(
            &mut rng,
            1,
            15_000,
            300.0,
            300.0,
            &FlowMixParams::default(),
        ));
        let records = export_flows(&flows, &ExportConfig::default());
        let assembled = assemble_flows(&records, 1.0);
        let grid = BinGrid::paper_intervals(2);
        let sizes = od_sizes_per_bin(&assembled, &grid, 2);
        assert_eq!(sizes[0][0], 40_000.0);
        assert_eq!(sizes[1][1], 15_000.0);
        assert_eq!(sizes[0][1], 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0,1]")]
    fn zero_rate_rejected() {
        let _ = assemble_flows(&[], 0.0);
    }

    #[test]
    fn deterministic_ordering() {
        let mut rng = StdRng::seed_from_u64(6);
        let flows = generate_flows(&mut rng, 0, 30_000, 0.0, 300.0, &FlowMixParams::default());
        let records = export_flows(&flows, &ExportConfig::default());
        let a = assemble_flows(&records, 1.0);
        let b = assemble_flows(&records, 1.0);
        assert_eq!(a, b);
    }
}
