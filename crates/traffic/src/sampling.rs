//! Network-wide effective-sampling simulation.
//!
//! When an OD pair's path crosses several active monitors, a packet is
//! "sampled" if at least one monitor catches it. With i.i.d. sampling at
//! rate `p_i` per monitor and independent monitors, the *effective* rate is
//! `ρ = 1 − Π(1 − p_i)` (paper eq. (1)); for the small rates the optimizer
//! produces it is well approximated by `ρ ≈ Σ p_i` (eq. (7)). Both forms are
//! provided, plus exact simulation of the distinct-sampled-packet count.

use crate::dist::Binomial;
use rand::Rng;

/// Exact effective sampling rate `1 − Π(1 − p_i)` over the monitor rates on
/// an OD pair's path (paper eq. (1)).
///
/// # Panics
/// Panics if any rate is outside `[0, 1]`.
pub fn effective_rate_exact(rates: &[f64]) -> f64 {
    let mut miss = 1.0;
    for &p in rates {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "sampling rate must be in [0,1], got {p}"
        );
        miss *= 1.0 - p;
    }
    1.0 - miss
}

/// Linear approximation `ρ ≈ Σ p_i` (paper eq. (7)), valid for small rates
/// and few monitors per path. The result is clamped to 1.
///
/// # Panics
/// Panics if any rate is outside `[0, 1]`.
pub fn effective_rate_approx(rates: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &p in rates {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "sampling rate must be in [0,1], got {p}"
        );
        sum += p;
    }
    sum.min(1.0)
}

/// Simulates the number of *distinct* packets of an `size`-packet OD pair
/// sampled by at least one of the monitors with the given rates.
///
/// Under the independence assumptions each packet is caught with probability
/// `ρ_exact`, independently, so the count is exactly
/// `Binomial(size, ρ_exact)`.
pub fn simulate_distinct_sampled<R: Rng + ?Sized>(rng: &mut R, size: u64, rates: &[f64]) -> u64 {
    let rho = effective_rate_exact(rates);
    Binomial::new(size, rho).sample(rng)
}

/// Simulates the per-monitor sampled counts for one OD pair (each monitor
/// independently catches `Binomial(size, p_i)` packets). Useful for
/// capacity-consumption accounting, where double-counting across monitors
/// *does* consume resources even though estimation dedups it.
pub fn simulate_per_monitor<R: Rng + ?Sized>(rng: &mut R, size: u64, rates: &[f64]) -> Vec<u64> {
    rates
        .iter()
        .map(|&p| Binomial::new(size, p).sample(rng))
        .collect()
}

/// Reference packet-level simulation: loops over every packet and every
/// monitor with individual Bernoulli draws, returning the distinct-sampled
/// count. `O(size × monitors)` — intended as the ground-truth oracle for
/// validating [`simulate_distinct_sampled`]'s Binomial shortcut, not for
/// production workloads (which reach 10⁷ packets per interval).
///
/// # Panics
/// Panics if any rate is outside `[0, 1]`.
pub fn simulate_packet_level<R: Rng + ?Sized>(rng: &mut R, size: u64, rates: &[f64]) -> u64 {
    for &p in rates {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "sampling rate must be in [0,1], got {p}"
        );
    }
    let mut caught = 0u64;
    for _ in 0..size {
        // A packet is counted once if any monitor on the path samples it.
        if rates.iter().any(|&p| rng.random::<f64>() < p) {
            caught += 1;
        }
    }
    caught
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_rate_basic() {
        assert_eq!(effective_rate_exact(&[]), 0.0);
        assert_eq!(effective_rate_exact(&[0.5]), 0.5);
        assert!((effective_rate_exact(&[0.5, 0.5]) - 0.75).abs() < 1e-15);
        assert_eq!(effective_rate_exact(&[1.0, 0.3]), 1.0);
    }

    #[test]
    fn approx_close_for_small_rates() {
        let rates = [0.001, 0.002];
        let exact = effective_rate_exact(&rates);
        let approx = effective_rate_approx(&rates);
        // Relative error ≈ p1·p2 / (p1+p2) — tiny.
        assert!((approx - exact) / exact < 1e-3);
        assert!(approx >= exact, "union bound: approx ≥ exact");
    }

    #[test]
    fn approx_clamped() {
        assert_eq!(effective_rate_approx(&[0.8, 0.8]), 1.0);
    }

    #[test]
    fn approx_diverges_for_large_rates() {
        // The approximation overestimates badly at high rates — the reason
        // the paper checks its validity (§V-B).
        let rates = [0.5, 0.5];
        assert_eq!(effective_rate_approx(&rates), 1.0);
        assert!((effective_rate_exact(&rates) - 0.75).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in [0,1]")]
    fn invalid_rate_panics() {
        let _ = effective_rate_exact(&[0.5, -0.1]);
    }

    #[test]
    fn distinct_sampled_mean() {
        let mut rng = StdRng::seed_from_u64(21);
        let size = 1_000_000u64;
        let rates = [0.002, 0.003];
        let rho = effective_rate_exact(&rates);
        let runs = 200;
        let mean = (0..runs)
            .map(|_| simulate_distinct_sampled(&mut rng, size, &rates))
            .sum::<u64>() as f64
            / runs as f64;
        assert!(
            (mean / (size as f64 * rho) - 1.0).abs() < 0.02,
            "mean {mean} vs expected {}",
            size as f64 * rho
        );
    }

    #[test]
    fn per_monitor_counts_independent_means() {
        let mut rng = StdRng::seed_from_u64(22);
        let size = 500_000u64;
        let rates = [0.01, 0.001];
        let runs = 200;
        let mut acc = [0u64; 2];
        for _ in 0..runs {
            let counts = simulate_per_monitor(&mut rng, size, &rates);
            acc[0] += counts[0];
            acc[1] += counts[1];
        }
        let m0 = acc[0] as f64 / runs as f64;
        let m1 = acc[1] as f64 / runs as f64;
        assert!((m0 / 5000.0 - 1.0).abs() < 0.05, "monitor0 mean {m0}");
        assert!((m1 / 500.0 - 1.0).abs() < 0.1, "monitor1 mean {m1}");
    }

    #[test]
    fn binomial_shortcut_matches_packet_level_oracle() {
        // The production path draws Binomial(size, 1 − Π(1−p)); the oracle
        // loops per packet per monitor. Same distribution: compare the first
        // two moments over many runs.
        let mut rng = StdRng::seed_from_u64(77);
        let size = 20_000u64;
        let rates = [0.01, 0.004, 0.0015];
        let runs = 300;
        let fast: Vec<f64> = (0..runs)
            .map(|_| simulate_distinct_sampled(&mut rng, size, &rates) as f64)
            .collect();
        let oracle: Vec<f64> = (0..runs)
            .map(|_| simulate_packet_level(&mut rng, size, &rates) as f64)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64]| {
            let m = mean(v);
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        let (mf, mo) = (mean(&fast), mean(&oracle));
        assert!((mf / mo - 1.0).abs() < 0.03, "means {mf} vs {mo}");
        let (vf, vo) = (var(&fast), var(&oracle));
        assert!((vf / vo - 1.0).abs() < 0.35, "variances {vf} vs {vo}");
    }

    #[test]
    fn no_monitors_no_samples() {
        let mut rng = StdRng::seed_from_u64(23);
        assert_eq!(simulate_distinct_sampled(&mut rng, 1_000_000, &[]), 0);
        assert!(simulate_per_monitor(&mut rng, 100, &[]).is_empty());
    }
}
