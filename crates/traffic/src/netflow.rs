//! Router-embedded sampled-NetFlow monitor simulation.

use crate::dist::Binomial;
use crate::flows::{Flow, FlowKey};
use rand::Rng;

/// A sampled flow record as exported by a monitor: the flow key plus the
/// *sampled* packet/byte counts observed at this monitor.
///
/// Flows none of whose packets were sampled produce no record — exactly the
/// visibility loss that makes small-flow estimation hard.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRecord {
    /// 5-tuple key of the original flow.
    pub key: FlowKey,
    /// OD index of the original flow.
    pub od_index: usize,
    /// Packets of this flow sampled at this monitor.
    pub sampled_packets: u64,
    /// Bytes of this flow sampled at this monitor (mean packet size × count).
    pub sampled_bytes: u64,
}

/// A packet-sampling monitor on one link, NetFlow-style: every packet is
/// sampled i.i.d. with probability `rate`, and flow state is updated only
/// with sampled packets (paper §I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Monitor {
    rate: f64,
}

impl Monitor {
    /// Creates a monitor with the given packet-sampling rate.
    ///
    /// # Panics
    /// Panics unless `rate ∈ [0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "sampling rate must be in [0,1], got {rate}"
        );
        Monitor { rate }
    }

    /// The configured packet-sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples the packets of each flow in `traffic` independently with
    /// probability `rate` and returns the records of flows that were seen at
    /// least once.
    ///
    /// The per-flow sampled count is drawn exactly as `Binomial(packets,
    /// rate)`; this is the flow-granularity equivalent of per-packet
    /// Bernoulli sampling and matches the paper's analysis (§IV-C).
    pub fn sample_flows<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        traffic: &[Flow],
    ) -> Vec<SampledRecord> {
        let mut out = Vec::new();
        if self.rate == 0.0 {
            return out;
        }
        for f in traffic {
            let sampled = Binomial::new(f.packets, self.rate).sample(rng);
            if sampled == 0 {
                continue;
            }
            let mean_pkt_bytes = f.bytes as f64 / f.packets as f64;
            out.push(SampledRecord {
                key: f.key,
                od_index: f.od_index,
                sampled_packets: sampled,
                sampled_bytes: (sampled as f64 * mean_pkt_bytes).round() as u64,
            });
        }
        out
    }

    /// Total sampled packets over `traffic` without materializing records;
    /// used by capacity accounting.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, traffic: &[Flow]) -> u64 {
        traffic
            .iter()
            .map(|f| Binomial::new(f.packets, self.rate).sample(rng))
            .sum()
    }

    /// Inverts sampled records to per-OD size estimates: the classic ×(1/p)
    /// scaling the paper applies to GEANT's 1/1000-sampled feed (§V-A).
    ///
    /// Returns a vector of length `num_ods` with estimated packets per OD.
    pub fn invert_to_od_sizes(&self, records: &[SampledRecord], num_ods: usize) -> Vec<f64> {
        let mut est = vec![0.0; num_ods];
        if self.rate == 0.0 {
            return est;
        }
        for r in records {
            assert!(r.od_index < num_ods, "record od_index out of range");
            est[r.od_index] += r.sampled_packets as f64 / self.rate;
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{generate_flows, FlowMixParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn traffic(seed: u64, pkts: u64) -> Vec<Flow> {
        generate_flows(
            &mut StdRng::seed_from_u64(seed),
            0,
            pkts,
            0.0,
            300.0,
            &FlowMixParams::default(),
        )
    }

    #[test]
    fn zero_rate_sees_nothing() {
        let m = Monitor::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let t = traffic(1, 10_000);
        assert!(m.sample_flows(&mut rng, &t).is_empty());
        assert_eq!(m.invert_to_od_sizes(&[], 1), vec![0.0]);
    }

    #[test]
    fn full_rate_sees_everything() {
        let m = Monitor::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let t = traffic(2, 5_000);
        let recs = m.sample_flows(&mut rng, &t);
        assert_eq!(recs.len(), t.len());
        let total: u64 = recs.iter().map(|r| r.sampled_packets).sum();
        assert_eq!(total, 5_000);
    }

    #[test]
    fn inversion_unbiased() {
        // Average of inverted estimates over many runs ≈ true size.
        let m = Monitor::new(0.01);
        let t = traffic(3, 200_000);
        let mut rng = StdRng::seed_from_u64(3);
        let runs = 200;
        let mut acc = 0.0;
        for _ in 0..runs {
            let recs = m.sample_flows(&mut rng, &t);
            acc += m.invert_to_od_sizes(&recs, 1)[0];
        }
        let mean_est = acc / runs as f64;
        assert!(
            (mean_est / 200_000.0 - 1.0).abs() < 0.02,
            "mean inverted estimate {mean_est}"
        );
    }

    #[test]
    fn sampled_counts_bounded_by_flow_size() {
        let m = Monitor::new(0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let t = traffic(4, 50_000);
        let by_key: std::collections::HashMap<_, u64> =
            t.iter().map(|f| (f.key, f.packets)).collect();
        for r in m.sample_flows(&mut rng, &t) {
            assert!(r.sampled_packets <= by_key[&r.key]);
            assert!(r.sampled_packets > 0);
        }
    }

    #[test]
    fn small_flows_often_missed_at_low_rates() {
        // At rate 1/1000, most mice disappear: the visibility bias the paper
        // mentions for GEANT's sampled feed.
        let m = Monitor::new(0.001);
        let mut rng = StdRng::seed_from_u64(5);
        let t = traffic(5, 100_000);
        let recs = m.sample_flows(&mut rng, &t);
        assert!(
            recs.len() < t.len() / 2,
            "{} of {} flows seen",
            recs.len(),
            t.len()
        );
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in [0,1]")]
    fn invalid_rate_rejected() {
        let _ = Monitor::new(1.2);
    }

    #[test]
    fn sample_count_matches_expectation() {
        let m = Monitor::new(0.02);
        let t = traffic(6, 500_000);
        let mut rng = StdRng::seed_from_u64(6);
        let runs = 50;
        let mean =
            (0..runs).map(|_| m.sample_count(&mut rng, &t)).sum::<u64>() as f64 / runs as f64;
        assert!((mean / 10_000.0 - 1.0).abs() < 0.05, "mean sampled {mean}");
    }
}
