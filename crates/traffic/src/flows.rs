//! NetFlow-style flow records and flow-level workload generation.

use crate::dist::{BoundedPareto, Zipf};
use rand::Rng;

/// Transport protocol of a flow key. Only the protocols that matter for a
/// backbone traffic mix are enumerated; anything else is `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP (the bulk of backbone bytes).
    Tcp,
    /// UDP.
    Udp,
    /// Any other IP protocol number.
    Other(u8),
}

/// The classic NetFlow 5-tuple key (paper §V-A: source/destination address,
/// source/destination port, protocol).
///
/// Addresses are opaque `u32`s — the substrate generates synthetic hosts, so
/// no textual IP formatting is needed beyond diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src_addr: u32,
    /// Destination address.
    pub dst_addr: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

/// One unsampled flow: the ground truth a monitor samples from.
///
/// Mirrors the record layout of §V-A (5-tuple, start/end timestamps, packet
/// and byte counts, source/destination AS, interfaces) minus router-local
/// details that have no bearing on the sampling analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// 5-tuple key.
    pub key: FlowKey,
    /// Index of the OD pair (within the generating task) this flow belongs to.
    pub od_index: usize,
    /// Flow start time, seconds from the epoch of the simulation.
    pub start: f64,
    /// Flow end time, seconds.
    pub end: f64,
    /// Total packets in the flow.
    pub packets: u64,
    /// Total bytes in the flow.
    pub bytes: u64,
}

impl Flow {
    /// Flow duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Parameters of the synthetic flow mix for one OD pair.
#[derive(Debug, Clone, Copy)]
pub struct FlowMixParams {
    /// Minimum flow size in packets (1 = allow single-packet flows).
    pub min_packets: f64,
    /// Maximum flow size in packets within one interval.
    pub max_packets: f64,
    /// Pareto tail exponent of the flow-size distribution.
    pub alpha: f64,
    /// Mean packet size in bytes (for byte counts).
    pub mean_packet_bytes: f64,
}

impl Default for FlowMixParams {
    /// A backbone-flavoured default: mice from 2 packets up to 50k-packet
    /// elephants, `α = 1.2` tail, 700-byte average packets.
    fn default() -> Self {
        FlowMixParams {
            min_packets: 2.0,
            max_packets: 50_000.0,
            alpha: 1.2,
            mean_packet_bytes: 700.0,
        }
    }
}

/// Generates a set of flows for OD pair `od_index` whose packet counts sum to
/// approximately `target_packets`, within the interval `[t0, t0 + dt)`.
///
/// Flow sizes are drawn from a bounded Pareto until the packet budget is
/// exhausted; the final flow is truncated to hit the target exactly, so the
/// returned flows always sum to `target_packets` (when it is ≥ 1).
///
/// Start times are uniform in the interval and durations are proportional to
/// flow size (capped at the interval), which is all the binning and timeout
/// logic downstream needs.
pub fn generate_flows<R: Rng + ?Sized>(
    rng: &mut R,
    od_index: usize,
    target_packets: u64,
    t0: f64,
    dt: f64,
    params: &FlowMixParams,
) -> Vec<Flow> {
    assert!(dt > 0.0, "interval length must be positive");
    let mut flows = Vec::new();
    if target_packets == 0 {
        return flows;
    }
    let size_dist = BoundedPareto::new(params.min_packets, params.max_packets, params.alpha);
    // Destination-port popularity is Zipf-distributed, as application mixes
    // are in practice (a few dominant services, a long tail).
    const POPULAR_PORTS: [u16; 5] = [443, 80, 53, 25, 8080];
    let port_popularity = Zipf::new(POPULAR_PORTS.len(), 1.2);
    let mut remaining = target_packets;
    while remaining > 0 {
        let drawn = size_dist.sample(rng).round().max(1.0) as u64;
        let pkts = drawn.min(remaining);
        remaining -= pkts;

        let start = t0 + rng.random::<f64>() * dt;
        // Duration scales with size: ~1k packets/sec of flow lifetime,
        // clamped into the interval.
        let duration = (pkts as f64 / 1000.0).clamp(0.001, dt);
        let end = (start + duration).min(t0 + dt);
        let bytes = (pkts as f64 * params.mean_packet_bytes) as u64;

        flows.push(Flow {
            key: FlowKey {
                src_addr: rng.random(),
                dst_addr: rng.random(),
                src_port: rng.random_range(1024..=u16::MAX),
                dst_port: POPULAR_PORTS[port_popularity.sample(rng) - 1],
                proto: if rng.random::<f64>() < 0.9 {
                    Protocol::Tcp
                } else {
                    Protocol::Udp
                },
            },
            od_index,
            start,
            end,
            packets: pkts,
            bytes,
        });
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF10)
    }

    #[test]
    fn packet_budget_exact() {
        let mut r = rng();
        for target in [1u64, 10, 1000, 123_457] {
            let flows = generate_flows(&mut r, 0, target, 0.0, 300.0, &FlowMixParams::default());
            let total: u64 = flows.iter().map(|f| f.packets).sum();
            assert_eq!(total, target, "target {target}");
        }
    }

    #[test]
    fn zero_target_zero_flows() {
        let mut r = rng();
        assert!(generate_flows(&mut r, 0, 0, 0.0, 300.0, &FlowMixParams::default()).is_empty());
    }

    #[test]
    fn flows_within_interval() {
        let mut r = rng();
        let flows = generate_flows(&mut r, 3, 50_000, 600.0, 300.0, &FlowMixParams::default());
        for f in &flows {
            assert!(f.start >= 600.0 && f.start < 900.0, "start {}", f.start);
            assert!(f.end <= 900.0 + 1e-9, "end {}", f.end);
            assert!(f.duration() >= 0.0);
            assert_eq!(f.od_index, 3);
            assert!(f.packets >= 1);
            assert!(f.bytes >= f.packets); // ≥1 byte per packet
        }
    }

    #[test]
    fn heavy_tail_mix() {
        // With a Pareto mix, flow count is much lower than target packets
        // (elephants) but mice are present.
        let mut r = rng();
        let flows = generate_flows(&mut r, 0, 1_000_000, 0.0, 300.0, &FlowMixParams::default());
        assert!(flows.len() > 10);
        assert!(flows.len() < 1_000_000 / 2);
        let max = flows.iter().map(|f| f.packets).max().unwrap();
        let min = flows.iter().map(|f| f.packets).min().unwrap();
        assert!(max > 1000, "expected elephants, max {max}");
        assert!(min <= 10, "expected mice, min {min}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = FlowMixParams::default();
        let a = generate_flows(&mut StdRng::seed_from_u64(5), 1, 5000, 0.0, 300.0, &p);
        let b = generate_flows(&mut StdRng::seed_from_u64(5), 1, 5000, 0.0, 300.0, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn port_mix_is_zipf_skewed() {
        let mut r = rng();
        let flows = generate_flows(&mut r, 0, 500_000, 0.0, 300.0, &FlowMixParams::default());
        let count = |port: u16| flows.iter().filter(|f| f.key.dst_port == port).count();
        // Rank-1 port (443) clearly dominates the rank-5 one (8080).
        assert!(
            count(443) > 2 * count(8080),
            "443: {} vs 8080: {}",
            count(443),
            count(8080)
        );
    }

    #[test]
    fn protocol_mix_mostly_tcp() {
        let mut r = rng();
        let flows = generate_flows(&mut r, 0, 200_000, 0.0, 300.0, &FlowMixParams::default());
        let tcp = flows
            .iter()
            .filter(|f| f.key.proto == Protocol::Tcp)
            .count();
        assert!(tcp as f64 / flows.len() as f64 > 0.8);
    }
}
