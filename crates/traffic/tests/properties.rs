//! Property-based tests for the traffic substrate: distribution laws,
//! estimator unbiasedness, pipeline conservation.

use nws_traffic::bins::BinGrid;
use nws_traffic::collector::{assemble_flows, od_sizes_per_bin};
use nws_traffic::dist::{Binomial, BoundedPareto, LogNormal, Zipf};
use nws_traffic::estimate::{accuracy, expected_sre, invert, squared_relative_error};
use nws_traffic::exporter::{export_flows, ExportConfig};
use nws_traffic::flows::{generate_flows, FlowMixParams};
use nws_traffic::sampling::{effective_rate_approx, effective_rate_exact};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binomial_support_and_mean(n in 1u64..100_000, p in 0.0..1.0f64, seed in any::<u64>()) {
        let b = Binomial::new(n, p);
        let mut rng = StdRng::seed_from_u64(seed);
        let runs = 64;
        let mut sum = 0u64;
        for _ in 0..runs {
            let x = b.sample(&mut rng);
            prop_assert!(x <= n);
            sum += x;
        }
        let mean = sum as f64 / runs as f64;
        // 6-sigma band on the mean of 64 samples.
        let sigma = (b.variance() / runs as f64).sqrt();
        prop_assert!(
            (mean - b.mean()).abs() <= 6.0 * sigma + 1.0,
            "mean {mean} vs {} (sigma {sigma})",
            b.mean()
        );
    }

    #[test]
    fn pareto_support(lo in 1.0..100.0f64, span in 1.5..1e4f64, alpha in 0.3..3.0f64, seed in any::<u64>()) {
        let d = BoundedPareto::new(lo, lo * span, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo * span, "{x} outside [{lo}, {}]", lo * span);
        }
    }

    #[test]
    fn zipf_ranks_valid_and_monotone_pmf(n in 1usize..200, s in 0.0..3.0f64, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
        for k in 1..n {
            prop_assert!(z.pmf(k) >= z.pmf(k + 1) - 1e-15);
        }
    }

    #[test]
    fn lognormal_positive_and_mean_param(mean in 0.1..1e4f64, cv in 0.0..2.0f64) {
        let d = LogNormal::from_mean_cv(mean, cv);
        prop_assert!((d.mean() - mean).abs() < 1e-9 * mean);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn effective_rates_bounds(rates in proptest::collection::vec(0.0..1.0f64, 0..6)) {
        let exact = effective_rate_exact(&rates);
        let approx = effective_rate_approx(&rates);
        prop_assert!((0.0..=1.0).contains(&exact));
        prop_assert!((0.0..=1.0).contains(&approx));
        // Union bound: the sum over-counts overlaps.
        prop_assert!(approx >= exact - 1e-12);
        // Exact rate at least the max individual rate.
        let max = rates.iter().cloned().fold(0.0, f64::max);
        prop_assert!(exact >= max - 1e-12);
    }

    #[test]
    fn estimator_identities(s in 1.0..1e7f64, rho in 0.0001..1.0f64, x in 0u64..1_000_000) {
        // invert/accuracy/SRE algebraic identities.
        let est = invert(x, rho);
        prop_assert!((est - x as f64 / rho).abs() < 1e-9 * est.max(1.0));
        let acc = accuracy(est, s);
        let sre = squared_relative_error(est, s);
        prop_assert!(((1.0 - acc) * (1.0 - acc) - sre).abs() < 1e-9 * (1.0 + sre));
        // expected SRE decreasing in rho.
        prop_assert!(expected_sre(rho, 1.0 / s) >= expected_sre((rho * 1.5).min(1.0), 1.0 / s) - 1e-15);
    }

    #[test]
    fn flow_generation_conserves_packets(target in 1u64..200_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = generate_flows(&mut rng, 0, target, 0.0, 300.0, &FlowMixParams::default());
        let total: u64 = flows.iter().map(|f| f.packets).sum();
        prop_assert_eq!(total, target);
        for f in &flows {
            prop_assert!(f.packets >= 1);
            prop_assert!(f.start >= 0.0 && f.start < 300.0);
            prop_assert!(f.end >= f.start && f.end <= 300.0 + 1e-9);
        }
    }

    #[test]
    fn export_assemble_roundtrip(target in 1u64..100_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = generate_flows(&mut rng, 0, target, 0.0, 300.0, &FlowMixParams::default());
        let records = export_flows(&flows, &ExportConfig::default());
        let assembled = assemble_flows(&records, 1.0);
        prop_assert_eq!(assembled.len(), flows.len());
        let total: f64 = assembled.iter().map(|f| f.packets).sum();
        prop_assert!((total - target as f64).abs() < 1e-9);
        // Binning the assembled view matches binning the original flows.
        let grid = BinGrid::paper_intervals(1);
        let collected = od_sizes_per_bin(&assembled, &grid, 1);
        let truth = grid.od_sizes_per_bin(&flows, 1);
        prop_assert!((collected[0][0] - truth[0][0] as f64).abs() < 1e-9);
    }

    #[test]
    fn inverse_scaling_linear(target in 100u64..50_000, rate_inv in 2u32..1000, seed in any::<u64>()) {
        // assemble_flows(records, 1/k) = k * assemble_flows(records, 1).
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = generate_flows(&mut rng, 0, target, 0.0, 300.0, &FlowMixParams::default());
        let records = export_flows(&flows, &ExportConfig::default());
        let unit = assemble_flows(&records, 1.0);
        let scaled = assemble_flows(&records, 1.0 / rate_inv as f64);
        let total_unit: f64 = unit.iter().map(|f| f.packets).sum();
        let total_scaled: f64 = scaled.iter().map(|f| f.packets).sum();
        prop_assert!(
            (total_scaled - total_unit * rate_inv as f64).abs() < 1e-6 * total_scaled
        );
    }
}
