//! Custom measurement tasks: plugging a different utility into the
//! optimization framework.
//!
//! §VI of the paper: "the method can be applied to a wide range of
//! measurement tasks for which a utility function can be sought", naming
//! anomaly detection as ongoing work. This example builds such a task
//! directly on the `nws-solver` engine: an anomaly-detection-flavoured
//! *coverage* utility (`LogUtility`) that rewards seeing *some* packets
//! from every OD pair quickly, rather than estimating sizes precisely.
//!
//! ```text
//! cargo run --example anomaly_task
//! ```

use nws_core::scenarios::janet_task;
use nws_core::{LogUtility, Utility};
use nws_linalg::Vector;
use nws_solver::{BoxLinearProblem, Objective, Solver};
use nws_topo::LinkId;

/// The anomaly-coverage objective: `Σ_k L(ρ_k)` with a log utility, over
/// the same candidate links and routing as the paper's task.
struct CoverageObjective {
    utility: LogUtility,
    /// Per OD: (variable index, routing fraction) pairs.
    rows: Vec<Vec<(usize, f64)>>,
}

impl CoverageObjective {
    fn rho(&self, k: usize, p: &Vector) -> f64 {
        self.rows[k]
            .iter()
            .map(|&(v, r)| r * p[v])
            .sum::<f64>()
            .min(1.0)
    }
}

impl Objective for CoverageObjective {
    fn value(&self, p: &Vector) -> f64 {
        (0..self.rows.len())
            .map(|k| self.utility.value(self.rho(k, p)))
            .sum()
    }
    fn gradient(&self, p: &Vector) -> Vector {
        let mut g = Vector::zeros(p.len());
        for (k, row) in self.rows.iter().enumerate() {
            let d1 = self.utility.d1(self.rho(k, p));
            for &(v, r) in row {
                g[v] += d1 * r;
            }
        }
        g
    }
    fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(k, row)| {
                let drho: f64 = row.iter().map(|&(v, r)| r * s[v]).sum();
                self.utility.d2(self.rho(k, p)) * drho * drho
            })
            .sum()
    }
}

fn main() {
    // Reuse the GEANT/JANET task for its topology, routing and loads.
    let task = janet_task();
    let candidates: Vec<LinkId> = task.candidate_links().to_vec();

    let rows: Vec<Vec<(usize, f64)>> = (0..task.ods().len())
        .map(|k| {
            candidates
                .iter()
                .enumerate()
                .filter(|&(_, &l)| task.routing().traverses(k, l))
                .map(|(v, &l)| (v, task.routing().entry(k, l)))
                .collect()
        })
        .collect();

    let objective = CoverageObjective {
        // Reward saturates quickly: catching the first packets of a flow is
        // what anomaly detection needs.
        utility: LogUtility::new(1e-4),
        rows,
    };
    let problem = BoxLinearProblem::new(
        Vector::filled(candidates.len(), 1.0),
        candidates
            .iter()
            .map(|&l| task.link_loads()[l.index()])
            .collect(),
        task.theta(),
    )
    .expect("feasible problem");

    let sol = Solver::default()
        .maximize(&objective, &problem)
        .expect("solves");
    println!(
        "anomaly-coverage task solved; KKT verified: {}",
        sol.kkt_verified
    );
    println!("activated monitors under the coverage utility:");
    for (v, &l) in candidates.iter().enumerate() {
        if sol.p[v] > 1e-9 {
            println!(
                "  {:<8} rate {:.6}",
                task.topology().link_label(l),
                sol.p[v]
            );
        }
    }
    let worst = (0..task.ods().len())
        .map(|k| objective.rho(k, &sol.p))
        .fold(f64::INFINITY, f64::min);
    println!("minimum per-OD effective rate: {worst:.6} (every pair is visible)");
    assert!(worst > 0.0, "coverage utility must observe every OD pair");
}
