//! Capacity planning: how much sampling budget does a target accuracy need?
//!
//! Sweeps the system capacity θ on the GEANT/JANET task and reports the
//! resulting accuracy envelope — the operator-facing question behind the
//! paper's Figure 2. Also demonstrates `λ`, the capacity multiplier, as the
//! marginal utility of one more sampled packet: it shrinks as the budget
//! grows, quantifying diminishing returns.
//!
//! ```text
//! cargo run --example theta_sweep
//! ```

use nws_core::scenarios::{janet_task_with, BACKGROUND_SEED};
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};

fn main() {
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "theta", "acc_mean", "acc_worst", "acc_best", "lambda", "monitors"
    );
    let mut last_lambda = f64::INFINITY;
    for theta in [10_000.0, 30_000.0, 100_000.0, 300_000.0, 1_000_000.0] {
        let task = janet_task_with(theta, BACKGROUND_SEED).expect("valid theta");
        let sol = solve_placement(&task, &PlacementConfig::default()).expect("feasible");
        let acc = summarize(&evaluate_accuracy(&task, &sol, 20, 11));
        println!(
            "{:>10} {:>10.4} {:>10.4} {:>10.4} {:>12.3e} {:>9}",
            theta,
            acc.mean,
            acc.worst,
            acc.best,
            sol.lambda,
            sol.active_monitors.len()
        );
        assert!(
            sol.lambda < last_lambda,
            "marginal utility of capacity must decrease with theta"
        );
        last_lambda = sol.lambda;
    }
    println!();
    println!(
        "lambda is the shadow price of the capacity constraint: the utility gained \
         per extra sampled packet per interval. Use it to size theta for a target."
    );
}
