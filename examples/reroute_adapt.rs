//! Adapting the monitoring configuration to a link failure.
//!
//! The paper's motivation (§I): re-routing events make static monitor
//! placements stale. With router-embedded monitors, adaptation is one
//! optimizer run. This example cuts the FR–LU fibre, shows the smallest
//! tracked OD pair (JANET-LU) vanish from the stale configuration's view,
//! and re-optimizes.
//!
//! ```text
//! cargo run --example reroute_adapt
//! ```

use nws_core::scenarios::{
    janet_task, janet_task_on, BACKGROUND_SEED, BACKGROUND_TOTAL_PKTS_PER_SEC, PAPER_THETA,
};
use nws_core::{evaluate_rates, solve_placement, PlacementConfig};
use nws_routing::failure::{bidirectional_pair, link_id_map, without_links};
use nws_routing::{OdPair, Router};
use nws_traffic::demand::DemandMatrix;
use nws_traffic::MEASUREMENT_INTERVAL_SECS;

fn main() {
    let before = janet_task();
    let cfg = PlacementConfig::default();
    let sol = solve_placement(&before, &cfg).expect("feasible");
    let lu_index = before
        .ods()
        .iter()
        .position(|od| od.name == "JANET-LU")
        .expect("JANET-LU tracked");
    println!(
        "before failure: JANET-LU effective rate {:.5}, utility {:.4}",
        sol.effective_rates_approx[lu_index], sol.utilities[lu_index]
    );

    // Fail FR<->LU; IS-IS reconverges; LU traffic now flows via DE.
    let topo = before.topology();
    let fr = topo.require_node("FR").expect("FR");
    let lu = topo.require_node("LU").expect("LU");
    let failed = bidirectional_pair(topo, fr, lu);
    let topo2 = without_links(topo, &failed).expect("still connected enough");
    let router = Router::new(&topo2);
    let janet2 = topo2.require_node("JANET").expect("JANET");
    let lu2 = topo2.require_node("LU").expect("LU");
    let new_path = router.path(OdPair::new(janet2, lu2)).expect("LU reachable");
    println!(
        "after FR-LU cut, JANET->LU reroutes to: {}",
        new_path.describe(&topo2)
    );

    // Rebuild loads and the task on the post-failure network.
    let bg = DemandMatrix::gravity_capacity_weighted(
        &topo2,
        BACKGROUND_TOTAL_PKTS_PER_SEC * MEASUREMENT_INTERVAL_SECS,
        0.5,
        BACKGROUND_SEED,
    );
    let bg_loads = bg.link_loads(&topo2);
    let after = janet_task_on(topo2, &bg_loads, PAPER_THETA).expect("valid task");

    // Stale rates: keep yesterday's configuration running.
    let idmap = link_id_map(topo, &failed);
    let mut stale_rates = vec![0.0; after.topology().num_links()];
    for (old, new) in idmap.iter().enumerate() {
        if let Some(new) = new {
            stale_rates[new.index()] = sol.rates[old];
        }
    }
    let stale = evaluate_rates(&after, &stale_rates);
    println!(
        "stale configuration: JANET-LU effective rate {:.6}, utility {:.4}  <- stale!",
        stale.effective_rates_approx[lu_index], stale.utilities[lu_index]
    );

    // One optimizer run adapts the whole network-wide configuration.
    let reopt = solve_placement(&after, &cfg).expect("feasible");
    println!(
        "re-optimized:        JANET-LU effective rate {:.5}, utility {:.4}",
        reopt.effective_rates_approx[lu_index], reopt.utilities[lu_index]
    );
    let moved: Vec<String> = reopt
        .active_monitors
        .iter()
        .filter(|l| stale.rates[l.index()] <= 1e-9)
        .map(|&l| after.topology().link_label(l))
        .collect();
    println!(
        "monitors newly activated by re-optimization: {}",
        moved.join(", ")
    );
}
