//! Quickstart: optimal sampling on a five-PoP toy backbone.
//!
//! Build a topology, declare which OD pairs you care about, give the system
//! a sampling budget, and let the optimizer decide which monitors to switch
//! on and at which rates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nws_core::{evaluate_accuracy, solve_placement, MeasurementTask, PlacementConfig};
use nws_routing::OdPair;
use nws_topo::{LinkKind, TopologyBuilder};

fn main() {
    // 1. A small backbone: CUST attaches at PoP A; traffic fans out to D and
    //    E over a shared core (A-B) and two tails (B-D busy, C-E quiet).
    let mut b = TopologyBuilder::new();
    let cust = b.external_node("CUST");
    let a = b.node("A");
    let bb = b.node("B");
    let c = b.node("C");
    let d = b.node("D");
    let e = b.node("E");
    b.bidirectional(cust, a, 2488.0, 1.0, LinkKind::Access);
    b.bidirectional(a, bb, 2488.0, 5.0, LinkKind::Backbone);
    b.bidirectional(bb, c, 622.0, 10.0, LinkKind::Backbone);
    b.bidirectional(bb, d, 622.0, 10.0, LinkKind::Backbone);
    b.bidirectional(c, e, 155.0, 10.0, LinkKind::Backbone);
    let topo = b.build().expect("valid topology");

    // 2. The measurement task: track CUST->D (an elephant) and CUST->E (a
    //    mouse), with background load on the core and a budget of 5 000
    //    sampled packets per 5-minute interval. Sizes are packets/interval.
    let mut background = vec![0.0; topo.num_links()];
    let a_b = topo.link_between(a, bb).expect("A-B exists");
    let b_d = topo.link_between(bb, d).expect("B-D exists");
    background[a_b.index()] = 3.0e6; // busy core
    background[b_d.index()] = 1.0e6; // busy tail towards D

    let task = MeasurementTask::builder(topo)
        .track("CUST-D", OdPair::new(cust, d), 600_000.0)
        .track("CUST-E", OdPair::new(cust, e), 3_000.0)
        .background_loads(&background)
        .theta(5_000.0)
        .build()
        .expect("valid task");

    // 3. Solve: which monitors, which rates?
    let sol = solve_placement(&task, &PlacementConfig::default()).expect("feasible");
    println!("KKT-certified global optimum: {}", sol.kkt_verified);
    println!("activated monitors:");
    for &l in &sol.active_monitors {
        println!(
            "  {:<6} rate {:.6}  ({:.0} pkts/interval of budget)",
            task.topology().link_label(l),
            sol.rates[l.index()],
            sol.rates[l.index()] * task.link_loads()[l.index()],
        );
    }

    // 4. What does the operator get? Per-OD effective rates and accuracy.
    let accs = evaluate_accuracy(&task, &sol, 20, 7);
    for acc in &accs {
        println!(
            "{}: effective rate {:.5}, mean accuracy {:.3} over 20 simulated intervals",
            acc.name, acc.rho, acc.stats.mean
        );
    }

    // The mouse (CUST-E) gets a high-rate monitor on its quiet tail (B-C or
    // C-E) instead of burning budget on the busy core — the essence of
    // network-wide sampling.
    let b_c = task.topology().link_between(bb, c).expect("B-C exists");
    let c_e = task.topology().link_between(c, e).expect("C-E exists");
    let tail_rate = sol.rates[b_c.index()].max(sol.rates[c_e.index()]);
    assert!(tail_rate > 100.0 * sol.rates[a_b.index()]);
}
