//! End-to-end flow-level pipeline: flows → sampling monitors → flow records
//! → inversion → OD estimates.
//!
//! The other examples evaluate accuracy analytically at OD granularity; this
//! one walks the full NetFlow machinery the paper's measurement plane is
//! made of — heavy-tailed flow generation, Bernoulli packet sampling at
//! flow granularity, sampled-record export, ×(1/p) inversion and 5-minute
//! binning — and shows the inverted estimates landing on the ground truth.
//!
//! ```text
//! cargo run --example netflow_pipeline
//! ```

use nws_traffic::bins::BinGrid;
use nws_traffic::flows::{generate_flows, FlowMixParams};
use nws_traffic::netflow::Monitor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2004);
    let params = FlowMixParams::default();
    let grid = BinGrid::paper_intervals(1);

    // Ground truth: two OD pairs share a link; one elephant, one mouse.
    let sizes: [u64; 2] = [2_000_000, 12_000];
    let mut traffic = Vec::new();
    for (od, &pkts) in sizes.iter().enumerate() {
        traffic.extend(generate_flows(
            &mut rng,
            od,
            pkts,
            0.0,
            grid.width(),
            &params,
        ));
    }
    println!(
        "generated {} flows: OD0 = {} pkts (elephant), OD1 = {} pkts (mouse)",
        traffic.len(),
        sizes[0],
        sizes[1]
    );

    // A router-embedded monitor samples the link at 1/100.
    let monitor = Monitor::new(0.01);
    let records = monitor.sample_flows(&mut rng, &traffic);
    let sampled_pkts: u64 = records.iter().map(|r| r.sampled_packets).sum();
    println!(
        "monitor at rate {} exported {} flow records ({} sampled packets, {:.1}% of flows seen)",
        monitor.rate(),
        records.len(),
        sampled_pkts,
        100.0 * records.len() as f64 / traffic.len() as f64
    );

    // Inversion: scale sampled counts by 1/p, aggregate per OD.
    let estimates = monitor.invert_to_od_sizes(&records, sizes.len());
    for (od, (&truth, est)) in sizes.iter().zip(&estimates).enumerate() {
        let accuracy = 1.0 - (est - truth as f64).abs() / truth as f64;
        println!(
            "OD{od}: truth {truth:>9} pkts, inverted estimate {est:>11.0}, accuracy {accuracy:.4}"
        );
    }

    // Binning sanity: everything landed in the single 5-minute interval.
    let per_bin = grid.od_sizes_per_bin(&traffic, sizes.len());
    assert_eq!(per_bin[0][0], sizes[0]);
    assert_eq!(per_bin[0][1], sizes[1]);
    println!(
        "bin 0 totals match ground truth: {:?} — the collector's view is consistent",
        per_bin[0]
    );
}
