//! The paper's headline scenario: JANET traffic across GEANT.
//!
//! Reconstructs §V of the paper — estimate the traffic JANET (AS 786) sends
//! to each of 20 GEANT PoPs, with a network-wide budget of 100 000 sampled
//! packets per 5-minute interval — and prints the Table-I-style report.
//!
//! ```text
//! cargo run --example geant_janet
//! ```

use nws_core::report::render_table1;
use nws_core::scenarios::janet_task;
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};

fn main() {
    let task = janet_task();
    println!(
        "GEANT reconstruction: {} PoPs, {} unidirectional backbone links",
        task.topology().num_nodes() - 1,
        task.topology().monitorable_links().len()
    );
    println!(
        "tracked OD pairs: {} (sizes {:.0}..{:.0} pkt/s), theta = {}",
        task.ods().len(),
        task.ods().last().expect("non-empty").size / 300.0,
        task.ods().first().expect("non-empty").size / 300.0,
        task.theta()
    );
    println!();

    let sol = solve_placement(&task, &PlacementConfig::default()).expect("feasible");
    let accs = evaluate_accuracy(&task, &sol, 20, 1);
    print!("{}", render_table1(&task, &sol, &accs));

    let summary = summarize(&accs);
    println!();
    println!(
        "accuracy over 20 simulated intervals: mean {:.4}, worst OD {:.4}, best OD {:.4}",
        summary.mean, summary.worst, summary.best
    );
}
