//! End-to-end integration: topology → routing → traffic → optimizer →
//! Monte-Carlo evaluation, asserting the paper's headline properties.

use nws_core::scenarios::{janet_task, janet_task_with, BACKGROUND_SEED, PAPER_THETA};
use nws_core::{
    evaluate_accuracy, solve_placement, summarize, PlacementConfig, ACTIVATION_THRESHOLD,
};
use nws_solver::TerminationReason;

#[test]
fn janet_task_solves_to_certified_optimum() {
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    assert!(sol.kkt_verified);
    assert_eq!(sol.reason, TerminationReason::KktSatisfied);
    assert!(
        sol.diagnostics.iterations < 2000,
        "paper's iteration budget"
    );
}

#[test]
fn budget_exactly_consumed() {
    // §IV-B eq. (8): no practical interest in leaving capacity unused.
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let used: f64 = sol.capacity_usage(&task).iter().sum();
    assert!(
        (used / PAPER_THETA - 1.0).abs() < 1e-6,
        "capacity used {used} vs theta {PAPER_THETA}"
    );
}

#[test]
fn sampling_rates_low_as_in_paper() {
    // §V-B: "the sampling rates are extremely low on most links", with the
    // quietest links around 0.9 %.
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let max_rate = sol.rates.iter().cloned().fold(0.0, f64::max);
    assert!(max_rate < 0.02, "max rate {max_rate} should stay around 1%");
    // Median active rate well below the max.
    let mut active: Vec<f64> = sol
        .rates
        .iter()
        .copied()
        .filter(|&p| p > ACTIVATION_THRESHOLD)
        .collect();
    active.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = active[active.len() / 2];
    assert!(median < 0.005, "median active rate {median}");
}

#[test]
fn every_od_pair_observed_with_good_accuracy() {
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let accs = evaluate_accuracy(&task, &sol, 20, 77);
    for a in &accs {
        assert!(a.rho > 0.0, "{} unobserved", a.name);
        assert!(
            a.stats.mean > 0.75,
            "{}: accuracy {:.4} too low (rho {:.5})",
            a.name,
            a.stats.mean,
            a.rho
        );
    }
    let summary = summarize(&accs);
    assert!(summary.mean > 0.88, "mean accuracy {:.4}", summary.mean);
}

#[test]
fn small_ods_monitored_on_quiet_links() {
    // The mechanism behind the paper's result: the optimizer finds links
    // where small OD pairs appear with little cross traffic.
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    // For the smallest OD (JANET-LU), the dominant monitor must sit on a
    // link at least 10x less loaded than the UK ingress links.
    let lu = task
        .ods()
        .iter()
        .position(|o| o.name == "JANET-LU")
        .unwrap();
    let monitors = sol.monitors_of_od(&task, lu);
    let (dominant, _) = monitors
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .copied()
        .unwrap();
    let topo = task.topology();
    let uk = topo.require_node("UK").unwrap();
    let fr = topo.require_node("FR").unwrap();
    let uk_fr = topo.link_between(uk, fr).unwrap();
    assert!(
        task.link_loads()[dominant.index()] * 10.0 < task.link_loads()[uk_fr.index()],
        "dominant LU monitor on {} is not a quiet link",
        topo.link_label(dominant)
    );
}

#[test]
fn utilities_well_balanced_across_ods() {
    // §V-B: "although the algorithm maximizes the sum of the utilities, the
    // individual utilities are well balanced".
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let min = sol.utilities.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sol
        .utilities
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(min > 0.9, "worst utility {min}");
    assert!(max - min < 0.1, "utility spread {max}-{min}");
}

#[test]
fn deterministic_solution_across_runs() {
    let a = solve_placement(&janet_task(), &PlacementConfig::default()).unwrap();
    let b = solve_placement(&janet_task(), &PlacementConfig::default()).unwrap();
    assert_eq!(a.rates, b.rates);
    assert_eq!(a.objective, b.objective);
}

#[test]
fn higher_theta_dominates_pointwise() {
    // More capacity can only help every OD (the paper's Figure 2 curves are
    // increasing in theta).
    let lo = solve_placement(
        &janet_task_with(30_000.0, BACKGROUND_SEED).unwrap(),
        &PlacementConfig::default(),
    )
    .unwrap();
    let hi = solve_placement(
        &janet_task_with(300_000.0, BACKGROUND_SEED).unwrap(),
        &PlacementConfig::default(),
    )
    .unwrap();
    for k in 0..lo.utilities.len() {
        assert!(
            hi.utilities[k] >= lo.utilities[k] - 1e-9,
            "OD {k}: {} < {}",
            hi.utilities[k],
            lo.utilities[k]
        );
    }
}

#[test]
fn empirical_c_estimation_feeds_the_utility() {
    // Close the loop the paper leaves implicit: estimate c = E[1/S] from
    // historical per-interval sizes (which fluctuate), build the task with
    // the empirical c, and check the utility honestly reflects the extra
    // relative-error risk of fluctuating sizes (Jensen: E[1/S] > 1/E[S]).
    use nws_traffic::dist::LogNormal;
    use nws_traffic::estimate::estimate_inv_mean_size;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(2026);
    let mean_size = 50_000.0;
    let dist = LogNormal::from_mean_cv(mean_size, 0.8);
    let history: Vec<f64> = (0..200).map(|_| dist.sample(&mut rng)).collect();
    let c_emp = estimate_inv_mean_size(&history);
    assert!(
        c_emp > 1.0 / mean_size,
        "Jensen: {c_emp} vs {}",
        1.0 / mean_size
    );

    let topo = nws_topo::geant();
    let janet = topo.require_node("JANET").unwrap();
    let nl = topo.require_node("NL").unwrap();
    let task = nws_core::MeasurementTask::builder(topo)
        .track_with_c(
            "JANET-NL",
            nws_routing::OdPair::new(janet, nl),
            mean_size,
            c_emp,
        )
        .theta(500.0)
        .build()
        .unwrap();
    assert_eq!(task.ods()[0].inv_mean_size, c_emp);

    // Same effective rate, honest (empirical-c) utility is lower than the
    // naive (1/mean) one — the optimizer will budget more for this OD.
    let naive = nws_core::SreUtility::from_mean_size(mean_size);
    let honest = nws_core::SreUtility::new(c_emp);
    use nws_core::Utility;
    for rho in [1e-4, 1e-3, 1e-2] {
        assert!(honest.value(rho) < naive.value(rho), "rho {rho}");
    }
}
