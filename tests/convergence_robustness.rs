//! Integration: solver robustness across randomized instances and topologies
//! (a fast cousin of the `convergence` experiment binary).

use nws_core::{solve_placement, MeasurementTask, PlacementConfig};
use nws_routing::{OdPair, Router};
use nws_topo::random::{gabriel_like, ring_with_chords};
use nws_topo::Topology;
use nws_traffic::demand::DemandMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a task on an arbitrary topology: pick the highest-degree node as
/// ingress, track every other reachable node, gravity background.
fn task_on(topo: Topology, seed: u64, theta_fraction: f64) -> Option<MeasurementTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ingress = topo
        .node_ids()
        .max_by_key(|&n| topo.out_links(n).count())
        .expect("non-empty topology");
    let router = Router::new(&topo);
    let mut sizes = Vec::new();
    for dst in topo.node_ids() {
        if dst == ingress {
            continue;
        }
        if router.path(OdPair::new(ingress, dst)).is_some() {
            sizes.push((dst, rng.random_range(10.0..30_000.0) * 300.0));
        }
    }
    drop(router);
    if sizes.is_empty() {
        return None;
    }
    let background = DemandMatrix::gravity_capacity_weighted(&topo, 2e8, 0.8, seed ^ 77);
    let bg_loads = background.link_loads(&topo);
    let tracked_total: f64 = sizes.iter().map(|&(_, s)| s).sum();
    let names: Vec<(String, OdPair, f64)> = sizes
        .iter()
        .map(|&(dst, s)| (format!("F{}", dst.index()), OdPair::new(ingress, dst), s))
        .collect();
    let mut builder = MeasurementTask::builder(topo);
    for (name, od, size) in names {
        builder = builder.track(name, od, size);
    }
    builder
        .background_loads(&bg_loads)
        .theta(tracked_total * theta_fraction)
        .build()
        .ok()
}

#[test]
fn solver_converges_on_ring_topologies() {
    for seed in 0..8 {
        let topo = ring_with_chords(12, 6, seed);
        let Some(task) = task_on(topo, seed, 0.05) else {
            continue;
        };
        let sol = solve_placement(&task, &PlacementConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(sol.kkt_verified, "seed {seed}: {:?}", sol.diagnostics);
        let used: f64 = sol.capacity_usage(&task).iter().sum();
        assert!((used / task.theta() - 1.0).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn solver_converges_on_geometric_topologies() {
    for seed in 0..8 {
        let topo = gabriel_like(16, 0.3, seed);
        let Some(task) = task_on(topo, seed + 100, 0.1) else {
            continue;
        };
        let sol = solve_placement(&task, &PlacementConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(sol.kkt_verified, "seed {seed}: {:?}", sol.diagnostics);
        assert!(sol.rates.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

#[test]
fn extreme_theta_fractions_still_solve() {
    // Tiny budget (0.1% of tracked traffic) and huge budget (approaching
    // the feasibility ceiling) are both handled.
    let topo = ring_with_chords(10, 5, 42);
    let tiny = task_on(topo.clone(), 1, 0.001).unwrap();
    let sol = solve_placement(&tiny, &PlacementConfig::default()).unwrap();
    assert!(sol.kkt_verified);

    let big = task_on(topo, 1, 0.001).unwrap();
    // Raise theta to 90% of the candidate ceiling.
    let ceiling: f64 = big
        .candidate_links()
        .iter()
        .map(|l| big.link_loads()[l.index()])
        .sum();
    let big = big.with_theta(ceiling * 0.9).unwrap();
    let sol = solve_placement(&big, &PlacementConfig::default()).unwrap();
    assert!(sol.kkt_verified, "{:?}", sol.diagnostics);
    // Near the ceiling most monitors saturate at alpha.
    let saturated = sol.rates.iter().filter(|&&p| p > 0.89).count();
    assert!(
        saturated > 0,
        "expected saturated monitors near the ceiling"
    );
}

#[test]
fn objective_monotone_in_theta_on_random_instance() {
    let topo = ring_with_chords(14, 7, 7);
    let base = task_on(topo, 3, 0.01).unwrap();
    let mut last = f64::NEG_INFINITY;
    for mult in [1.0, 2.0, 5.0, 10.0] {
        let task = base.with_theta(base.theta() * mult).unwrap();
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(sol.objective > last, "objective must rise with theta");
        last = sol.objective;
    }
}
