//! Integration: topology serialization round-trips preserve routing and
//! optimization results end to end.

use nws_core::scenarios::{janet_task_on, PAPER_THETA};
use nws_core::{solve_placement, PlacementConfig};
use nws_routing::{OdPair, Router, RoutingMatrix};
use nws_topo::format::{from_text, to_text};
use nws_topo::geant;
use nws_traffic::demand::DemandMatrix;

#[test]
fn routing_identical_after_roundtrip() {
    let original = geant();
    let reparsed = from_text(&to_text(&original)).unwrap();

    let janet_o = original.require_node("JANET").unwrap();
    let janet_r = reparsed.require_node("JANET").unwrap();
    assert_eq!(janet_o, janet_r, "node ids preserved");

    let ro = Router::new(&original);
    let rr = Router::new(&reparsed);
    for dst in original.node_ids() {
        let po = ro.path(OdPair::new(janet_o, dst));
        let pr = rr.path(OdPair::new(janet_r, dst));
        match (po, pr) {
            (Some(a), Some(b)) => {
                assert_eq!(a.cost(), b.cost());
                assert_eq!(a.links(), b.links());
            }
            (None, None) => {}
            _ => panic!("reachability differs for {}", original.node(dst).name()),
        }
    }
}

#[test]
fn optimization_identical_after_roundtrip() {
    let original = geant();
    let reparsed = from_text(&to_text(&original)).unwrap();

    let bg_o =
        DemandMatrix::gravity_capacity_weighted(&original, 1e8, 0.5, 9).link_loads(&original);
    let bg_r =
        DemandMatrix::gravity_capacity_weighted(&reparsed, 1e8, 0.5, 9).link_loads(&reparsed);
    assert_eq!(bg_o, bg_r, "deterministic loads preserved");

    let task_o = janet_task_on(original, &bg_o, PAPER_THETA).unwrap();
    let task_r = janet_task_on(reparsed, &bg_r, PAPER_THETA).unwrap();
    let sol_o = solve_placement(&task_o, &PlacementConfig::default()).unwrap();
    let sol_r = solve_placement(&task_r, &PlacementConfig::default()).unwrap();
    assert_eq!(sol_o.rates, sol_r.rates);
    assert_eq!(sol_o.objective, sol_r.objective);
}

#[test]
fn routing_matrix_consistent_with_router_paths() {
    let topo = geant();
    let janet = topo.require_node("JANET").unwrap();
    let ods: Vec<OdPair> = ["NL", "SK", "IL", "PL"]
        .iter()
        .map(|d| OdPair::new(janet, topo.require_node(d).unwrap()))
        .collect();
    let rm = RoutingMatrix::build(&topo, &ods);
    let router = Router::new(&topo);
    for (k, &od) in ods.iter().enumerate() {
        let path = router.path(od).unwrap();
        for &l in path.links() {
            assert!(
                rm.traverses(k, l),
                "matrix misses path link {}",
                topo.link_label(l)
            );
        }
        // Unique-path ODs have exactly the path's links in the matrix row.
        if router.unique_path(od) {
            assert_eq!(rm.links_of_od(k).len(), path.len());
        }
    }
}
