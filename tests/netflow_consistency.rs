//! Integration: the flow-level NetFlow machinery agrees with the analytic
//! OD-level model the optimizer and evaluator use.

use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, PlacementConfig};
use nws_traffic::bins::BinGrid;
use nws_traffic::dist::Binomial;
use nws_traffic::estimate::{accuracy, invert};
use nws_traffic::flows::{generate_flows, FlowMixParams};
use nws_traffic::netflow::Monitor;
use nws_traffic::sampling::{effective_rate_approx, effective_rate_exact};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn flow_level_sampling_matches_binomial_aggregate() {
    // Sampling each flow Binomial(n_f, p) and summing must distribute like
    // Binomial(S, p) with S = Σ n_f. Compare means and variances.
    let mut rng = StdRng::seed_from_u64(404);
    let total = 300_000u64;
    let flows = generate_flows(&mut rng, 0, total, 0.0, 300.0, &FlowMixParams::default());
    let monitor = Monitor::new(0.005);
    let runs = 300;
    let flow_level: Vec<f64> = (0..runs)
        .map(|_| monitor.sample_count(&mut rng, &flows) as f64)
        .collect();
    let agg = Binomial::new(total, 0.005);
    let agg_level: Vec<f64> = (0..runs).map(|_| agg.sample(&mut rng) as f64).collect();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var = |v: &[f64]| {
        let m = mean(v);
        v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
    };
    let (mf, ma) = (mean(&flow_level), mean(&agg_level));
    assert!((mf / ma - 1.0).abs() < 0.02, "means {mf} vs {ma}");
    let (vf, va) = (var(&flow_level), var(&agg_level));
    assert!((vf / va - 1.0).abs() < 0.35, "variances {vf} vs {va}");
}

#[test]
fn inversion_accuracy_matches_utility_prediction() {
    // The utility says E[SRE] = (1-ρ)/(ρS); check the realized SRE of the
    // full flow pipeline against it.
    let mut rng = StdRng::seed_from_u64(405);
    let total = 500_000u64;
    let rate = 0.002;
    let flows = generate_flows(&mut rng, 0, total, 0.0, 300.0, &FlowMixParams::default());
    let monitor = Monitor::new(rate);
    let runs = 400;
    let mut sre_acc = 0.0;
    for _ in 0..runs {
        let recs = monitor.sample_flows(&mut rng, &flows);
        let est = monitor.invert_to_od_sizes(&recs, 1)[0];
        let rel = (est - total as f64) / total as f64;
        sre_acc += rel * rel;
    }
    let empirical = sre_acc / runs as f64;
    let predicted = (1.0 - rate) / (rate * total as f64);
    assert!(
        (empirical / predicted - 1.0).abs() < 0.2,
        "empirical SRE {empirical:.3e} vs predicted {predicted:.3e}"
    );
}

#[test]
fn optimizer_rates_drive_flow_pipeline_to_predicted_accuracy() {
    // Full loop: solve the JANET task, take one OD's monitors, generate its
    // flows, sample them at the optimizer's rates at each monitor, dedup by
    // the union model, invert, and compare accuracy with the analytic one.
    let task = janet_task();
    let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let k = task
        .ods()
        .iter()
        .position(|o| o.name == "JANET-SE")
        .unwrap();
    let od = &task.ods()[k];
    let monitors = sol.monitors_of_od(&task, k);
    let rates: Vec<f64> = monitors.iter().map(|&(_, p)| p).collect();
    let rho_inv = effective_rate_approx(&rates);
    assert!((rho_inv - sol.effective_rates_approx[k]).abs() < 1e-12);

    let mut rng = StdRng::seed_from_u64(406);
    let size = od.size.round() as u64;
    let runs = 100;
    let mut acc_sum = 0.0;
    for _ in 0..runs {
        // Union sampling at the exact effective rate.
        let x = Binomial::new(size, effective_rate_exact(&rates)).sample(&mut rng);
        acc_sum += accuracy(invert(x, rho_inv), od.size);
    }
    let mean_acc = acc_sum / runs as f64;
    // Analytic prediction: E accuracy ≈ 1 − sqrt(2/π)·sqrt((1−ρ)/(ρS)).
    let rel_std = ((1.0 - rho_inv) / (rho_inv * od.size)).sqrt();
    let predicted = 1.0 - (2.0 / std::f64::consts::PI).sqrt() * rel_std;
    assert!(
        (mean_acc - predicted).abs() < 0.03,
        "mean accuracy {mean_acc:.4} vs predicted {predicted:.4}"
    );
}

#[test]
fn binning_preserves_flow_totals_across_intervals() {
    let mut rng = StdRng::seed_from_u64(407);
    let grid = BinGrid::paper_intervals(4);
    let mut flows = Vec::new();
    let per_bin_truth = [50_000u64, 20_000, 80_000, 5_000];
    for (b, &pkts) in per_bin_truth.iter().enumerate() {
        let (t0, _) = grid.span(b);
        flows.extend(generate_flows(
            &mut rng,
            0,
            pkts,
            t0,
            grid.width(),
            &FlowMixParams::default(),
        ));
    }
    let sizes = grid.od_sizes_per_bin(&flows, 1);
    for (b, &truth) in per_bin_truth.iter().enumerate() {
        assert_eq!(sizes[b][0], truth, "bin {b}");
    }
}
