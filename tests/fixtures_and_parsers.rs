//! Integration: the shipped fixture files stay valid, and the text parsers
//! never panic on arbitrary input (fuzz-flavoured property tests).

use nws_core::scenarios::janet_task;
use nws_core::taskfile::parse_task;
use nws_core::{solve_placement, PlacementConfig};
use nws_topo::format::from_text;
use proptest::prelude::*;

fn fixture(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../fixtures/");
    std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

#[test]
fn geant_fixture_matches_builtin() {
    let fixture_topo = from_text(&fixture("geant.topo")).unwrap();
    let builtin = nws_topo::geant();
    assert_eq!(fixture_topo.num_nodes(), builtin.num_nodes());
    assert_eq!(fixture_topo.num_links(), builtin.num_links());
    for l in builtin.link_ids() {
        assert_eq!(fixture_topo.link_label(l), builtin.link_label(l));
        assert_eq!(
            fixture_topo.link(l).igp_weight(),
            builtin.link(l).igp_weight()
        );
    }
}

#[test]
fn abilene_fixture_parses_and_connects() {
    let topo = from_text(&fixture("abilene.topo")).unwrap();
    assert_eq!(topo.num_nodes(), 12);
    assert!(topo.validate_connected().is_ok());
}

#[test]
fn janet_fixture_reproduces_reference_scenario() {
    // The shipped task file must produce the same problem instance (and
    // therefore the same optimum) as the programmatic scenario.
    let topo = from_text(&fixture("geant.topo")).unwrap();
    let task = parse_task(topo, &fixture("janet.nws")).unwrap();
    let reference = janet_task();
    assert_eq!(task.ods().len(), reference.ods().len());
    assert_eq!(task.theta(), reference.theta());
    for (a, b) in task.link_loads().iter().zip(reference.link_loads()) {
        assert!(
            (a - b).abs() < 1e-6 * b.max(1.0),
            "loads differ: {a} vs {b}"
        );
    }
    let sol_a = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let sol_b = solve_placement(&reference, &PlacementConfig::default()).unwrap();
    assert!((sol_a.objective - sol_b.objective).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The topology parser returns Ok or Err on arbitrary text — never panics.
    #[test]
    fn topology_parser_total(input in "\\PC*") {
        let _ = from_text(&input);
    }

    /// Ditto with line-structured input that looks more like real files.
    #[test]
    fn topology_parser_total_structured(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("node A".to_string()),
                Just("node B external".to_string()),
                Just("link A B 100 1 backbone".to_string()),
                Just("link B A -5 1 access".to_string()),
                Just("link A A 1 1 backbone".to_string()),
                Just("garbage with words".to_string()),
                Just("".to_string()),
                "[a-z ]{0,30}",
            ],
            0..20,
        )
    ) {
        let _ = from_text(&lines.join("\n"));
    }

    /// The task-file parser is likewise total.
    #[test]
    fn taskfile_parser_total(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("theta 1000".to_string()),
                Just("theta nan".to_string()),
                Just("od JANET NL 100".to_string()),
                Just("od NOWHERE NL 100".to_string()),
                Just("od JANET NL".to_string()),
                Just("background gravity 1000 0.5 1".to_string()),
                Just("background magic".to_string()),
                Just("restrict UK FR".to_string()),
                Just("alpha 2".to_string()),
                "[a-z0-9 .#]{0,40}",
            ],
            0..15,
        )
    ) {
        let _ = parse_task(nws_topo::geant(), &lines.join("\n"));
    }
}
