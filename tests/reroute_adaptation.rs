//! Integration: link failure → rerouting → placement staleness → recovery.

use nws_core::scenarios::{
    janet_task, janet_task_on, BACKGROUND_SEED, BACKGROUND_TOTAL_PKTS_PER_SEC, PAPER_THETA,
};
use nws_core::{evaluate_rates, solve_placement, PlacementConfig};
use nws_routing::failure::{bidirectional_pair, link_id_map, without_links};
use nws_routing::{OdPair, Router};
use nws_topo::Topology;
use nws_traffic::demand::DemandMatrix;
use nws_traffic::MEASUREMENT_INTERVAL_SECS;

/// Rebuilds the post-failure JANET task after cutting the fibre between two
/// named PoPs; returns the task plus the stale rate vector carried over.
fn fail_and_carry_over(
    a: &str,
    b: &str,
) -> (
    nws_core::MeasurementTask,
    Vec<f64>,
    nws_core::PlacementSolution,
) {
    let before = janet_task();
    let sol = solve_placement(&before, &PlacementConfig::default()).unwrap();
    let topo: &Topology = before.topology();
    let na = topo.require_node(a).unwrap();
    let nb = topo.require_node(b).unwrap();
    let failed = bidirectional_pair(topo, na, nb);
    assert_eq!(failed.len(), 2, "fibre has both directions");
    let topo2 = without_links(topo, &failed).unwrap();
    let idmap = link_id_map(topo, &failed);

    let bg = DemandMatrix::gravity_capacity_weighted(
        &topo2,
        BACKGROUND_TOTAL_PKTS_PER_SEC * MEASUREMENT_INTERVAL_SECS,
        0.5,
        BACKGROUND_SEED,
    );
    let bg_loads = bg.link_loads(&topo2);
    let after = janet_task_on(topo2, &bg_loads, PAPER_THETA).unwrap();

    let mut stale = vec![0.0; after.topology().num_links()];
    for (old, new) in idmap.iter().enumerate() {
        if let Some(new) = new {
            stale[new.index()] = sol.rates[old];
        }
    }
    (after, stale, sol)
}

#[test]
fn fr_lu_cut_blinds_stale_config_on_lu() {
    let (after, stale_rates, _) = fail_and_carry_over("FR", "LU");
    let stale = evaluate_rates(&after, &stale_rates);
    let lu = after
        .ods()
        .iter()
        .position(|o| o.name == "JANET-LU")
        .unwrap();
    // The stale config sees LU only through the low-rate core monitors.
    assert!(
        stale.effective_rates_approx[lu] < 5e-4,
        "stale LU rate {} should have collapsed",
        stale.effective_rates_approx[lu]
    );
    assert!(
        stale.utilities[lu] < 0.5,
        "stale LU utility {}",
        stale.utilities[lu]
    );
}

#[test]
fn reoptimization_restores_lu() {
    let (after, stale_rates, pre) = fail_and_carry_over("FR", "LU");
    let stale = evaluate_rates(&after, &stale_rates);
    let reopt = solve_placement(&after, &PlacementConfig::default()).unwrap();
    let lu = after
        .ods()
        .iter()
        .position(|o| o.name == "JANET-LU")
        .unwrap();
    assert!(
        reopt.utilities[lu] > 0.95,
        "re-optimized LU utility {}",
        reopt.utilities[lu]
    );
    assert!(reopt.objective > stale.objective);
    // Back to (or above) the pre-failure level: the network still has a
    // quiet link into LU (DE-LU).
    assert!(reopt.objective > pre.objective - 0.05);
}

#[test]
fn rerouting_changes_paths_deterministically() {
    let before = janet_task();
    let topo = before.topology();
    let fr = topo.require_node("FR").unwrap();
    let lu = topo.require_node("LU").unwrap();
    let failed = bidirectional_pair(topo, fr, lu);
    let topo2 = without_links(topo, &failed).unwrap();
    let router = Router::new(&topo2);
    let janet = topo2.require_node("JANET").unwrap();
    let lu2 = topo2.require_node("LU").unwrap();
    let path = router.path(OdPair::new(janet, lu2)).unwrap();
    let desc = path.describe(&topo2);
    assert!(
        desc.contains("DE -> LU"),
        "expected detour via DE, got {desc}"
    );
}

#[test]
fn cutting_an_unused_link_changes_little() {
    // Failing a fibre that carries no tracked traffic barely moves the
    // objective (background shifts only).
    let (after, stale_rates, pre) = fail_and_carry_over("HU", "SK");
    let stale = evaluate_rates(&after, &stale_rates);
    assert!(
        (stale.objective - pre.objective).abs() < 0.15,
        "objective moved too much: {} vs {}",
        stale.objective,
        pre.objective
    );
}
