//! Integration: the optimal method vs the paper's naïve alternatives (§V-C).

use nws_core::baseline::{access_link_only, two_phase_heuristic, uniform_everywhere};
use nws_core::scenarios::{janet_task, janet_task_with, uk_links, BACKGROUND_SEED};
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};
use nws_topo::janet_access_link;

#[test]
fn optimum_dominates_all_baselines_in_objective() {
    let task = janet_task();
    let cfg = PlacementConfig::default();
    let opt = solve_placement(&task, &cfg).unwrap();
    let uniform = uniform_everywhere(&task).unwrap();
    let two_phase = two_phase_heuristic(&task, 10).unwrap();
    let uk = solve_placement(
        &task.restricted_to(&uk_links(task.topology())).unwrap(),
        &cfg,
    )
    .unwrap();

    assert!(opt.objective > uniform.objective);
    assert!(opt.objective > two_phase.objective);
    assert!(opt.objective >= uk.objective - 1e-9);
}

#[test]
fn uk_only_hurts_small_ods_hardest() {
    // §V-C: the restricted solution "has poor performance with respect to
    // small OD pairs" because UK links are heavily loaded.
    let task = janet_task_with(30_000.0, BACKGROUND_SEED).unwrap();
    let cfg = PlacementConfig::default();
    let opt = solve_placement(&task, &cfg).unwrap();
    let restricted = task.restricted_to(&uk_links(task.topology())).unwrap();
    let uk = solve_placement(&restricted, &cfg).unwrap();

    let opt_acc = summarize(&evaluate_accuracy(&task, &opt, 20, 3));
    let uk_acc = summarize(&evaluate_accuracy(&restricted, &uk, 20, 3));
    assert!(
        opt_acc.worst > uk_acc.worst,
        "optimal worst {} should beat UK-only worst {}",
        opt_acc.worst,
        uk_acc.worst
    );
    // The best-served OD barely differs — the gap is in the tail.
    assert!((opt_acc.best - uk_acc.best).abs() < 0.1);
}

#[test]
fn access_link_needs_substantially_more_capacity() {
    // §V-C: ~70 % more capacity to track JANET-LU at the optimum's quality.
    let task = janet_task();
    let opt = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let binding_rho = opt
        .effective_rates_approx
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    let access = janet_access_link(task.topology());
    let baseline = access_link_only(&task, access).unwrap();
    let needed = baseline.capacity_for_rho(&task, binding_rho);
    let overhead = needed / task.theta() - 1.0;
    assert!(
        (0.4..1.2).contains(&overhead),
        "overhead {overhead:.2} out of the paper's ~0.7 ballpark"
    );
}

#[test]
fn two_phase_worsens_with_too_few_monitors() {
    let task = janet_task();
    let few = two_phase_heuristic(&task, 2).unwrap();
    let many = two_phase_heuristic(&task, 10).unwrap();
    assert!(many.objective >= few.objective);
    // With only two monitors some ODs stay unobserved entirely.
    assert!(few.effective_rates_approx.contains(&0.0));
}

#[test]
fn uniform_everywhere_wastes_budget_on_big_links() {
    // The uniform strategy puts most budget where the load is, not where
    // the information is: its worst OD does far worse than the optimum's.
    let task = janet_task();
    let opt = solve_placement(&task, &PlacementConfig::default()).unwrap();
    let uni = uniform_everywhere(&task).unwrap();
    let opt_min = opt.utilities.iter().cloned().fold(f64::INFINITY, f64::min);
    let uni_min = uni.utilities.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        opt_min > uni_min + 0.05,
        "optimal worst-OD utility {opt_min} vs uniform {uni_min}"
    );
}
