# Gnuplot: the utility function M(rho) — paper Figure 1.
# Usage: cargo run --release -p nws-bench --bin fig1 | sed -n '/^rho,/,$p' > fig1.csv
#        gnuplot -e "csv='fig1.csv'" scripts/plot_fig1.gp > fig1.svg
set terminal svg size 720,480 font "Helvetica,13"
set datafile separator ","
if (!exists("csv")) csv = "fig1.csv"
set logscale x
set xlabel "effective sampling rate rho"
set ylabel "utility M(rho)"
set yrange [0:1.05]
set key bottom right
plot csv using 1:2 skip 1 with lines lw 2 title "S = 500 pkts  (c = 2e-3)", \
     csv using 1:3 skip 1 with lines lw 2 title "S = 5000 pkts (c = 2e-4)"
