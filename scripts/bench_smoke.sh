#!/usr/bin/env sh
# Smoke-run of the performance surfaces, split into named stages so CI can
# gate on them independently:
#
#   ./scripts/bench_smoke.sh [stage ...]     stages: eval replay serve-load
#                                            wal serve chaos chaos-net
#                                            (no args = all stages)
#
#   eval   objective-evaluation micro-benchmark (--quick) producing
#          BENCH_eval.json, then scripts/check_bench.py enforcing the
#          blocking perf gates (parallel >= serial, monotone speedup curve,
#          obs overhead <= 1.05, solver parity, fused-kernel win) plus the
#          committed structural baselines.
#   replay scenario-engine accuracy sweep: generate the bench trace, replay
#          it at budgets 1/4/12 in reactive and forecast modes producing
#          BENCH_replay.json, double-run determinism check, then
#          scripts/check_bench.py enforcing the accuracy gates (gap monotone
#          in budget, forecast >= reactive at equal budget, full budget
#          tracks the oracle).
#   serve-load  concurrent TCP serving benchmark (--quick: fixed reader/
#          writer mix on loopback) producing BENCH_serve.json, then
#          scripts/check_bench.py enforcing the serving gates (zero
#          protocol errors, lock-free reads, coalescing, read p99 and
#          throughput vs the committed structural baselines).
#   wal    WAL append micro-benchmark with the fsync-policy sanity gate.
#   serve  kill -9 / recover round trip of the control-plane daemon on GEANT
#          (cold-vs-warm re-solve latency, recovery latency, exposition
#          shape checks) producing BENCH_recover.json.
#   chaos  fixed-seed store-fault replay drills.
#   chaos-net  fixed-seed socket-fault drills: the chaos_net bench binary
#          drives the resilient nws-client through seeded NetFaultPlan
#          schedules (resets, short reads/writes, delays, accept failures)
#          producing BENCH_chaos_net.json; the drill runs twice and the two
#          reports must cmp byte-identical (the report carries only
#          deterministic semantic invariants), then scripts/check_bench.py
#          enforces the convergence gates (exactly-once mutations, zero
#          torn lines, final state identical to the fault-free baseline).
#
# CI runs `eval replay serve-load` as the blocking perf-gates job and
# `wal serve chaos chaos-net` as the non-blocking resilience job. Run
# eval_bench/wal_bench/serve_load manually (without --quick) for
# publishable numbers.
set -eu

cd "$(dirname "$0")/.."

stage_eval() {
    cargo run --release -p nws-bench --bin eval_bench -- --quick --out BENCH_eval.json
    echo "bench smoke OK: $(pwd)/BENCH_eval.json"
    # Perf gates: schema, parallel-vs-serial floor, thread-monotone speedup
    # curve, obs overhead (<= 1.05), solver parallel parity, fused-kernel
    # win, and structural baselines. Blocking in CI.
    python3 scripts/check_bench.py BENCH_eval.json
}

stage_replay() {
    # Scenario-engine accuracy sweep on the committed bench trace shape
    # (48 ticks, diurnal period 48, one flash crowd, one short link flap —
    # the configuration the replay_budget tests gate on). The replay CSV on
    # stdout carries no wall times, so two runs of the same trace must be
    # byte-identical: that is the determinism acceptance check.
    cargo build --release -p nws-cli
    TRACE="$SCRATCH/bench.trace.jsonl"
    target/release/nws replay --gen-trace "$TRACE" \
        --seed 4242 --flash-crowds 1 --link-flaps 1 --flap-duration 4
    target/release/nws replay --trace "$TRACE" --budgets 1,4,12 \
        --bench-out BENCH_replay.json > "$SCRATCH/replay1.csv"
    target/release/nws replay --trace "$TRACE" --budgets 1,4,12 \
        > "$SCRATCH/replay2.csv"
    cmp "$SCRATCH/replay1.csv" "$SCRATCH/replay2.csv" || {
        echo "replay is not deterministic for a fixed trace:" >&2
        diff "$SCRATCH/replay1.csv" "$SCRATCH/replay2.csv" >&2 || true
        exit 1; }
    echo "replay smoke OK: $(pwd)/BENCH_replay.json (deterministic across runs)"
    # Accuracy gates: oracle gap monotone as the budget shrinks, forecast
    # mode at least on par with reactive at equal budget, per-tick
    # re-solves track the oracle. Blocking in CI.
    python3 scripts/check_bench.py BENCH_replay.json
}

stage_serve_load() {
    # Concurrent serving benchmark: a fixed reader/writer connection mix
    # against an in-process daemon on loopback TCP (read-heavy: 32 readers,
    # 4 writers in quick mode). The serving gates are blocking in CI: zero
    # protocol errors, every read answered lock-free from the published
    # snapshot, coalescing holding one rebuild per flush, and read
    # p99/throughput within the structural-baseline band.
    cargo run --release -p nws-bench --bin serve_load -- --quick --out BENCH_serve.json
    python3 scripts/check_bench.py BENCH_serve.json
    echo "serve-load smoke OK: $(pwd)/BENCH_serve.json"
}

stage_wal() {
    # WAL throughput smoke: append rate under the three fsync policies.
    # Sanity gate: `never` (no fsync at all) must be at least as fast as
    # `always` (an fdatasync per append); if it is not, the measurement or
    # the store is broken.
    cargo run --release -p nws-bench --bin wal_bench -- --quick --out BENCH_wal.json
    always_rate=$(sed -n 's/.*"policy": "always".*"appends_per_sec": \([0-9.]*\).*/\1/p' BENCH_wal.json)
    never_rate=$(sed -n 's/.*"policy": "never".*"appends_per_sec": \([0-9.]*\).*/\1/p' BENCH_wal.json)
    [ -n "$always_rate" ] && [ -n "$never_rate" ] \
        || { echo "BENCH_wal.json missing per-policy appends_per_sec" >&2; exit 1; }
    awk -v n="$never_rate" -v a="$always_rate" 'BEGIN { exit !(n >= a) }' || {
        echo "wal_bench: never ($never_rate/s) slower than always ($always_rate/s)" >&2; exit 1; }
    echo "wal bench OK: always $always_rate/s, never $never_rate/s"
}

stage_serve() {
    # Kill-and-recover round trip, phase A: run the release binary directly
    # (cargo run would orphan the daemon on kill -9), seed a --state-dir
    # with a prefix of the scripted session (snapshot, set_theta,
    # update_demand — the commands a later full-fixture replay can repeat
    # without conflict), read back the installed rates, then kill -9
    # mid-flight. The daemon journals each command before acknowledging it,
    # so everything acknowledged here must survive.
    cargo build --release -p nws-cli
    STATE_DIR="$SCRATCH/state"
    mkfifo "$SCRATCH/in"
    target/release/nws serve --state-dir "$STATE_DIR" \
        < "$SCRATCH/in" > "$SCRATCH/prekill.out" &
    DAEMON_PID=$!
    exec 3> "$SCRATCH/in"
    head -3 fixtures/serve_session.jsonl >&3
    printf '{"cmd":"query_rates"}\n' >&3
    tries=0
    while [ "$(wc -l < "$SCRATCH/prekill.out")" -lt 5 ]; do  # hello + 4 responses
        tries=$((tries + 1))
        [ "$tries" -le 300 ] || { echo "pre-kill daemon did not respond" >&2; exit 1; }
        sleep 0.1
    done
    kill -9 "$DAEMON_PID"
    exec 3>&-
    wait "$DAEMON_PID" 2>/dev/null || true
    grep -q '"ok":false' "$SCRATCH/prekill.out" && {
        echo "pre-kill daemon rejected a scripted event:" >&2
        grep '"ok":false' "$SCRATCH/prekill.out" >&2
        exit 1; }
    prekill_monitors=$(grep -o '"monitors":\[[^]]*\]' "$SCRATCH/prekill.out" | tail -1)
    [ -n "$prekill_monitors" ] || { echo "pre-kill query_rates carried no monitors" >&2; exit 1; }
    [ -f "$STATE_DIR/LOCK" ] || { echo "killed daemon left no lockfile to reclaim" >&2; exit 1; }
    echo "kill phase OK: daemon $DAEMON_PID killed with journal in $STATE_DIR"

    # Phase B / daemon smoke: reopen the same --state-dir (reclaiming the
    # dead daemon's lockfile), recover (snapshot-less boot: mirror solve +
    # replay of the 3 journaled commands), and confirm via a leading
    # query_rates that the recovered installed rates match the pre-kill
    # response byte-for-byte. Then pipe the full scripted event sequence
    # (demand updates, a link failure, theta changes, snapshot/rollback, a
    # metrics query) through the same daemon. --shadow-cold runs a cold
    # solve per event so BENCH_recover.json carries the warm-vs-cold
    # comparison (and now the recovery latency); --metrics-out/--trace
    # write the Prometheus-style exposition with the span tree; `set -e`
    # makes a non-zero daemon exit fail the smoke run.
    { printf '{"cmd":"query_rates"}\n'; cat fixtures/serve_session.jsonl; } | \
        target/release/nws serve --shadow-cold --bench-out BENCH_recover.json \
            --metrics-out METRICS_serve.prom --trace --state-dir "$STATE_DIR" \
            --solve-deadline-ms 5000 > serve_session.out
    [ -s BENCH_recover.json ] || { echo "BENCH_recover.json missing or empty" >&2; exit 1; }
    grep -q '"bye":true' serve_session.out || { echo "daemon did not shut down cleanly" >&2; exit 1; }
    if grep -q '"ok":false' serve_session.out; then
        echo "daemon rejected a scripted event:" >&2
        grep '"ok":false' serve_session.out >&2
        exit 1
    fi

    # Recovery assertions: the hello line must report the replayed journal,
    # the recovered rates must be identical to what the killed daemon had
    # installed, the metrics response must carry wal_stats, and the
    # recovery latency must land in the bench report.
    grep -q '"recovered":{"snapshot":false,"replayed_events":3,' serve_session.out \
        || { echo "hello line does not report recovery of the 3 journaled events" >&2; exit 1; }
    recovered_monitors=$(grep -o '"monitors":\[[^]]*\]' serve_session.out | head -1)
    [ "$recovered_monitors" = "$prekill_monitors" ] || {
        echo "recovered rates differ from pre-kill rates:" >&2
        echo "  pre-kill:  $prekill_monitors" >&2
        echo "  recovered: $recovered_monitors" >&2
        exit 1; }
    grep -q '"wal_stats":{"policy":"always",' serve_session.out \
        || { echo "metrics response lacks wal_stats" >&2; exit 1; }
    grep -q '"recovery":{"snapshot":false,"replayed_events":3,' BENCH_recover.json \
        || { echo "BENCH_recover.json lacks the recovery report" >&2; exit 1; }
    grep -q '"solve_deadline":{"configured_ms":5000,"solve_ms_p99":' BENCH_recover.json \
        || { echo "BENCH_recover.json lacks the solve-deadline section" >&2; exit 1; }
    rm -f serve_session.out
    echo "recovery smoke OK: 3 events replayed, rates match pre-kill byte-for-byte"

    # The exposition must exist, carry the expected metric families
    # (including the store counters), and every non-comment line must parse
    # as `name[{labels}] value`.
    [ -s METRICS_serve.prom ] || { echo "METRICS_serve.prom missing or empty" >&2; exit 1; }
    grep -q '^solver_iterations_total ' METRICS_serve.prom \
        || { echo "exposition lacks solver counters" >&2; exit 1; }
    grep -q '^daemon_command_latency_ms_bucket{' METRICS_serve.prom \
        || { echo "exposition lacks per-command latency histograms" >&2; exit 1; }
    grep -q '^wal_appends ' METRICS_serve.prom \
        || { echo "exposition lacks WAL counters" >&2; exit 1; }
    grep -q '^recovery_replayed_events ' METRICS_serve.prom \
        || { echo "exposition lacks the recovery counter" >&2; exit 1; }
    grep -q '^degraded_solves ' METRICS_serve.prom \
        || { echo "exposition lacks the degraded-solve counter" >&2; exit 1; }
    grep -q '^daemon_overload_shed_total ' METRICS_serve.prom \
        || { echo "exposition lacks the overload-shed counter" >&2; exit 1; }
    grep -q '^persistence_degraded ' METRICS_serve.prom \
        || { echo "exposition lacks the persistence-degraded gauge" >&2; exit 1; }
    grep -q '^# span solve' METRICS_serve.prom \
        || { echo "exposition lacks the --trace span tree" >&2; exit 1; }
    awk '/^#/ { next }
         { if (NF != 2 || $2 + 0 != $2) { bad = 1; print "malformed sample: " $0 > "/dev/stderr" } }
         END { exit bad }' METRICS_serve.prom \
        || { echo "METRICS_serve.prom failed the exposition shape check" >&2; exit 1; }
    echo "serve smoke OK: $(pwd)/BENCH_recover.json + METRICS_serve.prom"
}

stage_chaos() {
    # Chaos smoke: replay the scripted session against the release binary
    # under fixed-seed store-fault schedules (--chaos-store-seed drives the
    # store's injectable I/O layer deterministically). Contract under fault
    # injection: the daemon must not panic, must shut down cleanly, and —
    # because store faults may degrade persistence but never serving — the
    # query_rates response must be byte-identical to a fault-free run.
    # Error responses are tolerated here by design (that is the point of
    # the drill), unlike the phase-B gate above.
    cargo build --release -p nws-cli
    target/release/nws serve < fixtures/serve_session.jsonl > "$SCRATCH/chaos_clean.out"
    clean_monitors=$(grep -o '"monitors":\[[^]]*\]' "$SCRATCH/chaos_clean.out" | head -1)
    [ -n "$clean_monitors" ] || { echo "chaos baseline run carried no monitors" >&2; exit 1; }
    for seed in 7 41 1999; do
        CHAOS_DIR="$SCRATCH/chaos_$seed"
        target/release/nws serve --state-dir "$CHAOS_DIR" --chaos-store-seed "$seed" \
            --solve-deadline-ms 5000 \
            < fixtures/serve_session.jsonl > "$SCRATCH/chaos_$seed.out" 2> "$SCRATCH/chaos_$seed.err" \
            || { echo "chaos daemon (seed $seed) exited non-zero" >&2
                 cat "$SCRATCH/chaos_$seed.err" >&2; exit 1; }
        grep -qi 'panicked at' "$SCRATCH/chaos_$seed.err" && {
            echo "chaos daemon (seed $seed) panicked:" >&2
            cat "$SCRATCH/chaos_$seed.err" >&2; exit 1; }
        grep -q '"bye":true' "$SCRATCH/chaos_$seed.out" \
            || { echo "chaos daemon (seed $seed) did not shut down cleanly" >&2; exit 1; }
        chaos_monitors=$(grep -o '"monitors":\[[^]]*\]' "$SCRATCH/chaos_$seed.out" | head -1)
        [ "$chaos_monitors" = "$clean_monitors" ] || {
            echo "chaos run (seed $seed) served different rates than the clean run:" >&2
            echo "  clean: $clean_monitors" >&2
            echo "  chaos: $chaos_monitors" >&2
            exit 1; }
    done
    echo "chaos smoke OK: seeds 7/41/1999 served byte-identical rates, zero panics"
}

stage_chaos_net() {
    # Network chaos drill: seeded socket-fault schedules against the
    # resilient client. The report carries only deterministic semantic
    # invariants (no wall times, no retry counts), so two runs with the
    # same fixed seeds must produce byte-identical reports — that cmp is
    # the determinism acceptance gate for the whole fault-injection layer.
    cargo build --release -p nws-bench --bin chaos_net
    target/release/chaos_net --quick --out BENCH_chaos_net.json
    target/release/chaos_net --quick --out "$SCRATCH/chaos_net2.json"
    cmp BENCH_chaos_net.json "$SCRATCH/chaos_net2.json" || {
        echo "chaos_net report is not deterministic across runs:" >&2
        diff BENCH_chaos_net.json "$SCRATCH/chaos_net2.json" >&2 || true
        exit 1; }
    # Convergence gates: every schedule exactly-once, zero torn lines,
    # clean shutdown, final state identical to the fault-free baseline.
    python3 scripts/check_bench.py BENCH_chaos_net.json
    echo "chaos-net smoke OK: $(pwd)/BENCH_chaos_net.json (deterministic across runs)"
}

SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

stages="${*:-eval replay serve-load wal serve chaos chaos-net}"
for stage in $stages; do
    case "$stage" in
        eval)       stage_eval ;;
        replay)     stage_replay ;;
        serve-load) stage_serve_load ;;
        wal)        stage_wal ;;
        serve)      stage_serve ;;
        chaos)      stage_chaos ;;
        chaos-net)  stage_chaos_net ;;
        *) echo "unknown stage '$stage' (expected: eval replay serve-load wal serve chaos chaos-net)" >&2; exit 2 ;;
    esac
done
