#!/usr/bin/env sh
# Smoke-run of the objective-evaluation micro-benchmark: small instances,
# few repetitions, JSON report at the repo root. Used as a non-blocking CI
# step; run manually (without --quick) for publishable numbers.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p nws-bench --bin eval_bench -- --quick --out BENCH_eval.json
echo "bench smoke OK: $(pwd)/BENCH_eval.json"
