#!/usr/bin/env sh
# Smoke-run of the performance surfaces: the objective-evaluation
# micro-benchmark (small instances, few repetitions) and a scripted
# control-plane daemon session on GEANT recording cold-vs-warm re-solve
# latency. JSON reports land at the repo root. Used as a non-blocking CI
# step; run eval_bench manually (without --quick) for publishable numbers.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p nws-bench --bin eval_bench -- --quick --out BENCH_eval.json
echo "bench smoke OK: $(pwd)/BENCH_eval.json"

# Daemon smoke: pipe a scripted event sequence (demand updates, a link
# failure, theta changes, snapshot/rollback) through `nws serve` on the
# JANET-on-GEANT scenario. --shadow-cold runs a cold solve per event so
# BENCH_serve.json carries the warm-vs-cold comparison; `set -e` makes a
# non-zero daemon exit fail the smoke run.
cargo run --release -p nws-cli -- serve --shadow-cold --bench-out BENCH_serve.json \
    < fixtures/serve_session.jsonl > serve_session.out
[ -s BENCH_serve.json ] || { echo "BENCH_serve.json missing or empty" >&2; exit 1; }
grep -q '"bye":true' serve_session.out || { echo "daemon did not shut down cleanly" >&2; exit 1; }
if grep -q '"ok":false' serve_session.out; then
    echo "daemon rejected a scripted event:" >&2
    grep '"ok":false' serve_session.out >&2
    exit 1
fi
rm -f serve_session.out
echo "serve smoke OK: $(pwd)/BENCH_serve.json"
