#!/usr/bin/env sh
# Smoke-run of the performance surfaces: the objective-evaluation
# micro-benchmark (small instances, few repetitions) and a scripted
# control-plane daemon session on GEANT recording cold-vs-warm re-solve
# latency. JSON reports land at the repo root. Used as a non-blocking CI
# step; run eval_bench manually (without --quick) for publishable numbers.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p nws-bench --bin eval_bench -- --quick --out BENCH_eval.json
echo "bench smoke OK: $(pwd)/BENCH_eval.json"

# Observability overhead gate: with the recorder enabled, the serial
# gradient hot path must stay within 5% of the no-op-sink baseline
# (ratios below 1 are normal timer noise).
ratio=$(sed -n 's/.*"overhead_ratio": \([0-9.]*\).*/\1/p' BENCH_eval.json)
[ -n "$ratio" ] || { echo "BENCH_eval.json missing obs overhead_ratio" >&2; exit 1; }
awk -v r="$ratio" 'BEGIN { exit !(r <= 1.05) }' || {
    echo "obs overhead ratio $ratio exceeds the 1.05 gate" >&2; exit 1; }
echo "obs overhead OK: ratio $ratio"

# Daemon smoke: pipe a scripted event sequence (demand updates, a link
# failure, theta changes, snapshot/rollback, a metrics query) through
# `nws serve` on the JANET-on-GEANT scenario. --shadow-cold runs a cold
# solve per event so BENCH_serve.json carries the warm-vs-cold comparison;
# --metrics-out/--trace write the Prometheus-style exposition with the span
# tree; `set -e` makes a non-zero daemon exit fail the smoke run.
cargo run --release -p nws-cli -- serve --shadow-cold --bench-out BENCH_serve.json \
    --metrics-out METRICS_serve.prom --trace \
    < fixtures/serve_session.jsonl > serve_session.out
[ -s BENCH_serve.json ] || { echo "BENCH_serve.json missing or empty" >&2; exit 1; }
grep -q '"bye":true' serve_session.out || { echo "daemon did not shut down cleanly" >&2; exit 1; }
if grep -q '"ok":false' serve_session.out; then
    echo "daemon rejected a scripted event:" >&2
    grep '"ok":false' serve_session.out >&2
    exit 1
fi
rm -f serve_session.out

# The exposition must exist, carry the expected metric families, and every
# non-comment line must parse as `name[{labels}] value`.
[ -s METRICS_serve.prom ] || { echo "METRICS_serve.prom missing or empty" >&2; exit 1; }
grep -q '^solver_iterations_total ' METRICS_serve.prom \
    || { echo "exposition lacks solver counters" >&2; exit 1; }
grep -q '^daemon_command_latency_ms_bucket{' METRICS_serve.prom \
    || { echo "exposition lacks per-command latency histograms" >&2; exit 1; }
grep -q '^# span solve' METRICS_serve.prom \
    || { echo "exposition lacks the --trace span tree" >&2; exit 1; }
awk '/^#/ { next }
     { if (NF != 2 || $2 + 0 != $2) { bad = 1; print "malformed sample: " $0 > "/dev/stderr" } }
     END { exit bad }' METRICS_serve.prom \
    || { echo "METRICS_serve.prom failed the exposition shape check" >&2; exit 1; }
echo "serve smoke OK: $(pwd)/BENCH_serve.json + METRICS_serve.prom"
