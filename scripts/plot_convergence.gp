# Gnuplot: gap-to-optimum vs iteration — the zigzag pathology of Section IV-D.
# Usage: cargo run --release -p nws-bench --bin convergence_trace | sed -n '/^iteration,/,$p' > trace.csv
#        gnuplot -e "csv='trace.csv'" scripts/plot_convergence.gp > trace.svg
set terminal svg size 720,480 font "Helvetica,13"
set datafile separator ","
if (!exists("csv")) csv = "trace.csv"
set logscale y
set xlabel "iteration"
set ylabel "objective gap to certified optimum"
set key top right
plot csv using 1:2 skip 1 with lines lw 2 title "Polak-Ribiere conjugation", \
     csv using 1:3 skip 1 with lines lw 2 title "plain projected gradient"
