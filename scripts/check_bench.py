#!/usr/bin/env python3
"""Validate BENCH_eval.json / BENCH_replay.json / BENCH_serve.json /
BENCH_chaos_net.json and enforce the CI gates.

Run from bench_smoke.sh and the blocking `perf-gates` CI job:

    python3 scripts/check_bench.py BENCH_eval.json
    python3 scripts/check_bench.py BENCH_eval.json --write-baselines
    python3 scripts/check_bench.py BENCH_replay.json
    python3 scripts/check_bench.py BENCH_serve.json
    python3 scripts/check_bench.py BENCH_chaos_net.json

The report's top-level "bench" field selects the rule set. For chaos-net
reports ("bench": "chaos_net", from the chaos_net drill binary), every
seeded socket-fault schedule must have converged to the fault-free
baseline: exactly-once mutations, zero torn response lines, clean
shutdown, and a byte-identical final-state digest (see check_chaos_net).

For serve-load reports ("bench": "serve_load", from the serve_load bench
binary):

1.  Schema: config axes (including the enabled idle/write timeouts),
    read/mutate latency sections, the lock-free, coalescing, and
    slow-client-protection counters, and the daemon summary all present
    and finite.
2.  Serving gates (hard):
      - zero protocol errors and zero read/mutate errors, clean shutdown;
      - with the serving timeouts enabled, zero slow-client evictions,
        zero idle reaps, zero hard connection I/O errors;
      - reads are answered lock-free: reads_served_lockfree >= the measured
        read count, and jobs_enqueued stays within the mutate stream
        (read load must not touch the solve queue);
      - coalescing holds: epoch rebuilds track coalesce flushes, never the
        raw update count.
3.  Structural baselines: the connection mix (readers/writers/duration/
    burst) must match scripts/bench_baselines.json exactly; read p99 must
    stay within TIMING_BAND of the baseline and read throughput must not
    fall more than TIMING_BAND below it.

For replay reports ("bench": "replay", from `nws replay --bench-out`):

1.  Schema: trace/oracle provenance present, one curve row per
    (mode, budget) with finite fields, both modes at every budget.
2.  Accuracy gates (structural, tolerance-padded — every number in the
    report is deterministic for a fixed trace seed):
      - per mode, the mean oracle gap is monotone non-decreasing as the
        re-solve budget shrinks (resolve_every grows): a replayer that
        gets *better* with fewer solves means scoring is broken;
      - at every budget, forecast mode's mean gap <= reactive's
        * FORECAST_PARITY + GAP_PAD: predicting mid-window demand must
        not lose to reacting at the window edge on the bench trace;
      - re-solving every tick tracks the oracle to solver tolerance.

For eval reports, checks in order:

1.  Schema: the report carries every expected section and field, lists are
    aligned with the `threads` axis, all numbers finite and positive.
2.  Perf gates (hard, the acceptance criteria of the perf work):
      - gradient speedup at the highest thread count on the `random*` exact
        case must be >= SPEEDUP_FLOOR (parallel may never lose to serial
        beyond timer noise; on a single-core host the engine auto-falls back
        to serial, so the curve sits at ~1.0 and passes by design);
      - the speedup curve must be monotone non-decreasing in threads within
        MONOTONE_TOL (more workers never make it meaningfully slower);
      - obs overhead_ratio <= OBS_RATIO_MAX;
      - every solver case: parallel_ms <= serial_ms * SOLVER_PARITY (the
        regression this suite exists to prevent measured 280x) and
        objective_rel_diff <= OBJ_REL_DIFF_MAX;
      - every fused case: fusion_gain at the serial variant >= FUSED_FLOOR
        (the single-pass kernel may never lose to three passes).
3.  Structural baselines (scripts/bench_baselines.json): num_ods/nnz/dim of
    each case must match exactly — instance drift silently invalidates every
    committed number — and timing fields are compared within a wide
    tolerance band (quick mode on shared CI runners jitters; the band only
    catches order-of-magnitude regressions).

Exit code 0 = all gates pass. Nonzero prints every failure, not just the
first.
"""

import json
import math
import sys
from pathlib import Path

SPEEDUP_FLOOR = 0.90  # parallel vs serial gradient, highest thread count
MONOTONE_TOL = 0.15  # max allowed dip between consecutive thread counts
OBS_RATIO_MAX = 1.05  # recorder overhead gate (matches bench_smoke.sh)
SOLVER_PARITY = 1.5  # parallel solve within 1.5x of serial (sub-ms solves
# jitter ~20% on shared runners; the regression this guards against was 280x)
OBJ_REL_DIFF_MAX = 1e-6  # parallel and serial solves agree on the objective
FUSED_FLOOR = 0.95  # fused may never lose to separate (0.05 timer noise)
TIMING_BAND = 8.0  # baseline timing ratio band (order-of-magnitude net)

# Replay gates. Gaps are relative optimality gaps (dimensionless); the pad
# absorbs solver-tolerance wiggle on gaps that are themselves tiny.
GAP_PAD = 1e-4  # additive tolerance on gap comparisons
FORECAST_PARITY = 1.05  # forecast mean gap <= reactive * this + pad
FULL_BUDGET_GAP = 1e-6  # resolve-every-tick must track the oracle

BASELINES = Path(__file__).resolve().parent / "bench_baselines.json"

EVAL_FIELDS = (
    "name",
    "model",
    "num_ods",
    "nnz",
    "dim",
    "value_ms",
    "gradient_ms",
    "curvature_ms",
    "gradient_speedup",
)
FUSED_FIELDS = ("name", "model", "separate_ms", "fused_ms", "fusion_gain")
SOLVER_FIELDS = (
    "name",
    "num_ods",
    "serial_ms",
    "parallel_ms",
    "speedup",
    "parallel_threads",
    "iterations",
    "objective_rel_diff",
)

failures = []


def fail(msg):
    failures.append(msg)


def finite_positive(xs):
    return all(isinstance(x, (int, float)) and math.isfinite(x) and x > 0 for x in xs)


def check_schema(report):
    for key in ("bench", "quick", "available_cores", "threads", "obs",
                "eval_cases", "fused", "solver_cases"):
        if key not in report:
            fail(f"schema: missing top-level key {key!r}")
    if failures:
        return
    threads = report["threads"]
    if not threads or threads != sorted(threads) or not finite_positive(threads):
        fail(f"schema: malformed threads axis {threads!r}")
    obs = report["obs"]
    for key in ("disabled_ms", "enabled_ms", "overhead_ratio"):
        if not finite_positive([obs.get(key, -1)]):
            fail(f"schema: obs.{key} missing or non-positive")
    for case in report["eval_cases"]:
        for key in EVAL_FIELDS:
            if key not in case:
                fail(f"schema: eval case {case.get('name', '?')} missing {key!r}")
                continue
        for key in ("value_ms", "gradient_ms", "curvature_ms", "gradient_speedup"):
            xs = case.get(key, [])
            if len(xs) != len(threads):
                fail(f"schema: {case['name']}/{case['model']}.{key} has "
                     f"{len(xs)} entries, expected {len(threads)}")
            elif not finite_positive(xs):
                fail(f"schema: {case['name']}/{case['model']}.{key} not finite-positive: {xs}")
    for case in report["fused"]:
        for key in FUSED_FIELDS:
            if key not in case:
                fail(f"schema: fused case {case.get('name', '?')} missing {key!r}")
        for key in ("separate_ms", "fused_ms", "fusion_gain"):
            xs = case.get(key, [])
            if len(xs) != len(threads) or not finite_positive(xs):
                fail(f"schema: fused {case.get('name', '?')}.{key} malformed: {xs}")
    for case in report["solver_cases"]:
        for key in SOLVER_FIELDS:
            if key not in case:
                fail(f"schema: solver case {case.get('name', '?')} missing {key!r}")
        if case.get("objective_rel_diff", 1.0) < 0:
            fail(f"schema: solver {case.get('name', '?')} negative objective_rel_diff")


def check_perf_gates(report):
    threads = report["threads"]
    # Gate 1+2: random-case exact-model gradient speedup floor + monotone curve.
    random_exact = [c for c in report["eval_cases"]
                    if c["name"].startswith("random") and c["model"] == "exact"]
    if not random_exact:
        fail("gates: no random/exact eval case to gate on")
    for case in random_exact:
        speedup = case["gradient_speedup"]
        if speedup[-1] < SPEEDUP_FLOOR:
            fail(f"gates: {case['name']} exact gradient speedup at x{threads[-1]} "
                 f"is {speedup[-1]:.3f} < {SPEEDUP_FLOOR} — parallel lost to serial")
        for i in range(1, len(speedup)):
            if speedup[i] < speedup[i - 1] - MONOTONE_TOL:
                fail(f"gates: {case['name']} exact speedup curve non-monotone at "
                     f"x{threads[i]}: {speedup[i - 1]:.3f} -> {speedup[i]:.3f} "
                     f"(tolerance {MONOTONE_TOL})")
    # Gate 3: observability overhead.
    ratio = report["obs"]["overhead_ratio"]
    if ratio > OBS_RATIO_MAX:
        fail(f"gates: obs overhead_ratio {ratio:.4f} > {OBS_RATIO_MAX}")
    # Gate 4: solver parallel parity + solution agreement.
    for case in report["solver_cases"]:
        if case["parallel_ms"] > case["serial_ms"] * SOLVER_PARITY:
            fail(f"gates: solver {case['name']} parallel {case['parallel_ms']:.1f} ms "
                 f"> serial {case['serial_ms']:.1f} ms x {SOLVER_PARITY}")
        if case["objective_rel_diff"] > OBJ_REL_DIFF_MAX:
            fail(f"gates: solver {case['name']} objective_rel_diff "
                 f"{case['objective_rel_diff']:.2e} > {OBJ_REL_DIFF_MAX}")
    # Gate 5: the fused kernel must win (serial variant, steady measurement).
    for case in report["fused"]:
        if case["fusion_gain"][0] < FUSED_FLOOR:
            fail(f"gates: fused {case['name']}/{case['model']} gain "
                 f"{case['fusion_gain'][0]:.3f} < {FUSED_FLOOR} — fusion lost "
                 f"to separate kernels")


def structure_of(report):
    """The baseline-worthy projection of a report: exact instance shape plus
    banded reference timings."""
    return {
        "threads": report["threads"],
        "eval_cases": [
            {
                "name": c["name"],
                "model": c["model"],
                "num_ods": c["num_ods"],
                "nnz": c["nnz"],
                "dim": c["dim"],
                "gradient_ms_serial": c["gradient_ms"][0],
            }
            for c in report["eval_cases"]
        ],
        "solver_cases": [
            {"name": c["name"], "num_ods": c["num_ods"], "serial_ms": c["serial_ms"]}
            for c in report["solver_cases"]
        ],
    }


def check_baselines(report):
    if not BASELINES.exists():
        fail(f"baselines: {BASELINES} missing — regenerate with --write-baselines")
        return
    base = json.loads(BASELINES.read_text())
    cur = structure_of(report)
    if base["threads"] != cur["threads"]:
        fail(f"baselines: threads axis changed {base['threads']} -> {cur['threads']}")
    for section in ("eval_cases", "solver_cases"):
        by_key = {(c["name"], c.get("model")): c for c in base.get(section, [])}
        for c in cur[section]:
            key = (c["name"], c.get("model"))
            ref = by_key.pop(key, None)
            if ref is None:
                fail(f"baselines: new {section} entry {key} — refresh baselines")
                continue
            for field in ("num_ods", "nnz", "dim"):
                if field in ref and ref[field] != c[field]:
                    fail(f"baselines: {key} {field} drifted {ref[field]} -> "
                         f"{c[field]} — the instance changed, numbers not comparable")
            for field in ("gradient_ms_serial", "serial_ms"):
                if field in ref and ref[field] > 0:
                    r = c[field] / ref[field]
                    if r > TIMING_BAND or r < 1.0 / TIMING_BAND:
                        fail(f"baselines: {key} {field} off by {r:.1f}x vs baseline "
                             f"({ref[field]:.3f} -> {c[field]:.3f} ms)")
        for key in by_key:
            fail(f"baselines: {section} entry {key} disappeared from the report")


CURVE_FIELDS = (
    "mode",
    "resolve_every",
    "hysteresis",
    "resolves",
    "suppressed",
    "mean_gap",
    "max_gap",
    "final_gap",
    "err_p50",
    "err_p90",
    "err_p99",
    "rate_churn",
    "wall_ms",
)


def check_replay_schema(report):
    for key in ("trace", "oracle", "curves"):
        if key not in report:
            fail(f"schema: missing top-level key {key!r}")
    if failures:
        return
    trace = report["trace"]
    for key in ("seed", "ticks", "ods", "link_events"):
        if key not in trace:
            fail(f"schema: trace.{key} missing")
    oracle = report["oracle"]
    if not finite_positive([oracle.get("resolves", -1)]):
        fail("schema: oracle.resolves missing or non-positive")
    if trace.get("ticks") != oracle.get("resolves"):
        fail(f"schema: oracle resolved {oracle.get('resolves')} ticks of "
             f"{trace.get('ticks')} — the oracle must re-solve every tick")
    curves = report["curves"]
    if not curves:
        fail("schema: empty curves list")
    for row in curves:
        for key in CURVE_FIELDS:
            if key not in row:
                fail(f"schema: curve row missing {key!r}: {row}")
        if row.get("mode") not in ("reactive", "forecast"):
            fail(f"schema: unknown mode {row.get('mode')!r}")
        for key in ("mean_gap", "max_gap", "final_gap"):
            gap = row.get(key, float("nan"))
            if not (isinstance(gap, (int, float)) and math.isfinite(gap)):
                fail(f"schema: {row.get('mode')}/{row.get('resolve_every')} "
                     f"{key} not finite: {gap}")
            elif gap < -GAP_PAD:
                fail(f"schema: {row.get('mode')}/{row.get('resolve_every')} "
                     f"{key} {gap:.2e} is negative beyond tolerance — the "
                     f"replayer beat a certified optimum")
    # Both modes must cover the same budget axis.
    budgets = {}
    for row in curves:
        budgets.setdefault(row["mode"], []).append(row["resolve_every"])
    if set(budgets) != {"reactive", "forecast"}:
        fail(f"schema: expected both modes, got {sorted(budgets)}")
    elif budgets["reactive"] != budgets["forecast"]:
        fail(f"schema: budget axes differ: reactive {budgets['reactive']} "
             f"vs forecast {budgets['forecast']}")
    elif len(budgets["reactive"]) < 3:
        fail(f"schema: need >= 3 budgets for a curve, got {budgets['reactive']}")


def check_replay_gates(report):
    curves = report["curves"]
    by_mode = {}
    for row in curves:
        by_mode.setdefault(row["mode"], []).append(row)
    for mode, rows in by_mode.items():
        rows.sort(key=lambda r: r["resolve_every"])
        # Gate 1: starving the budget never helps.
        for a, b in zip(rows, rows[1:]):
            if a["mean_gap"] > b["mean_gap"] + GAP_PAD:
                fail(f"gates: {mode} mean_gap not monotone in budget: "
                     f"every-{a['resolve_every']} {a['mean_gap']:.2e} > "
                     f"every-{b['resolve_every']} {b['mean_gap']:.2e} + pad")
        # Gate 3: the full budget tracks the oracle.
        if rows and rows[0]["resolve_every"] == 1 and mode == "reactive":
            if abs(rows[0]["mean_gap"]) > FULL_BUDGET_GAP:
                fail(f"gates: reactive every-1 mean_gap {rows[0]['mean_gap']:.2e} "
                     f"> {FULL_BUDGET_GAP} — per-tick re-solves lost the oracle")
    # Gate 2: forecasting never loses to reacting at equal budget.
    reactive = {r["resolve_every"]: r for r in by_mode.get("reactive", [])}
    for row in by_mode.get("forecast", []):
        ref = reactive.get(row["resolve_every"])
        if ref is None:
            continue
        if row["mean_gap"] > ref["mean_gap"] * FORECAST_PARITY + GAP_PAD:
            fail(f"gates: forecast loses at every-{row['resolve_every']}: "
                 f"{row['mean_gap']:.2e} vs reactive {ref['mean_gap']:.2e} "
                 f"(parity {FORECAST_PARITY}, pad {GAP_PAD})")


def run_replay_checks(report):
    check_replay_schema(report)
    if not failures:
        check_replay_gates(report)
    if failures:
        return 1
    budgets = sorted({row["resolve_every"] for row in report["curves"]})
    print(f"check_bench: all replay gates pass "
          f"({len(report['curves'])} curves over budgets {budgets}; "
          f"trace seed {report['trace']['seed']}, "
          f"{report['trace']['ticks']} ticks)")
    return 0


SERVE_SIDE_FIELDS = ("count", "errors", "throughput_per_sec",
                     "p50_ms", "p95_ms", "p99_ms")
SERVE_COUNTERS = ("reads_served_lockfree", "jobs_enqueued",
                  "coalesce_flushes", "coalesced_updates", "epoch_rebuilds",
                  "slow_client_evictions", "conn_idle_timeouts",
                  "conn_io_errors")
# Slack on jobs_enqueued beyond the measured mutate count: the control
# connection's shutdown is queued, and a shed burst may land partially.
ENQUEUE_SLACK = 16


def check_serve_schema(report):
    for key in ("bench", "quick", "config", "wall_s", "read", "mutate",
                "protocol_errors", "shed", "max_coalesced", "counters",
                "daemon"):
        if key not in report:
            fail(f"schema: missing top-level key {key!r}")
    if failures:
        return
    for key in ("readers", "writers", "duration_ms", "coalesce_ms",
                "idle_timeout_ms", "write_timeout_ms", "burst", "seed"):
        if key not in report["config"]:
            fail(f"schema: config.{key} missing")
    if report["config"].get("idle_timeout_ms", 0) <= 0:
        fail("schema: the bench must run with the idle timeout enabled "
             "(config.idle_timeout_ms > 0) so the timeout gates mean something")
    for side in ("read", "mutate"):
        section = report[side]
        for key in SERVE_SIDE_FIELDS:
            v = section.get(key)
            if not (isinstance(v, (int, float)) and math.isfinite(v) and v >= 0):
                fail(f"schema: {side}.{key} missing or not finite: {v!r}")
        if section.get("count", 0) <= 0:
            fail(f"schema: {side}.count is zero — the load never ran")
    for key in SERVE_COUNTERS:
        if key not in report["counters"]:
            fail(f"schema: counters.{key} missing")
    if "clean_shutdown" not in report["daemon"]:
        fail("schema: daemon.clean_shutdown missing")


def check_serve_gates(report):
    read, mutate = report["read"], report["mutate"]
    counters = report["counters"]
    # Gate 1: a clean protocol under concurrency.
    if report["protocol_errors"] != 0:
        fail(f"gates: {report['protocol_errors']} protocol error(s) under load")
    for side in ("read", "mutate"):
        if report[side]["errors"] != 0:
            fail(f"gates: {report[side]['errors']} {side} error(s) under load")
    if not report["daemon"].get("clean_shutdown"):
        fail("gates: daemon did not shut down cleanly")
    # Gate 1b: with the serving timeouts *enabled*, none of the slow-client
    # protections may fire against healthy load — an eviction or idle reap
    # here means the daemon is punishing well-behaved peers, and a hard
    # socket error means a connection died outside the protocol.
    for key in ("slow_client_evictions", "conn_idle_timeouts",
                "conn_io_errors"):
        if counters.get(key, 0) != 0:
            fail(f"gates: {counters[key]} {key} with healthy clients and "
                 f"timeouts enabled")
    # Gate 2: reads bypass the queue. Every measured read must have been
    # served from the published snapshot, and the enqueue counter must
    # track the mutate stream only (plus the control shutdown).
    if counters["reads_served_lockfree"] < read["count"]:
        fail(f"gates: reads_served_lockfree {counters['reads_served_lockfree']} "
             f"< measured reads {read['count']} — reads hit the queue")
    if counters["jobs_enqueued"] > mutate["count"] + report["shed"] + ENQUEUE_SLACK:
        fail(f"gates: jobs_enqueued {counters['jobs_enqueued']} exceeds the "
             f"mutate stream {mutate['count']} + shed {report['shed']} + "
             f"{ENQUEUE_SLACK} — read load is leaking into the solve queue")
    # Gate 3: coalescing holds — one rebuild per flush (plus the startup
    # solve), never one per raw update.
    if counters["epoch_rebuilds"] > counters["coalesce_flushes"] + 2:
        fail(f"gates: epoch_rebuilds {counters['epoch_rebuilds']} > "
             f"coalesce_flushes {counters['coalesce_flushes']} + 2 — "
             f"coalesced updates are rebuilding individually")
    if counters["coalesced_updates"] < counters["coalesce_flushes"]:
        fail(f"gates: coalesced_updates {counters['coalesced_updates']} < "
             f"coalesce_flushes {counters['coalesce_flushes']}")


def serve_structure_of(report):
    """The baseline-worthy projection of a serve-load report: the exact
    connection mix plus banded reference timings."""
    return {
        "readers": report["config"]["readers"],
        "writers": report["config"]["writers"],
        "duration_ms": report["config"]["duration_ms"],
        "burst": report["config"]["burst"],
        "read_p99_ms": report["read"]["p99_ms"],
        "read_throughput_per_sec": report["read"]["throughput_per_sec"],
    }


def check_serve_baselines(report):
    if not BASELINES.exists():
        fail(f"baselines: {BASELINES} missing — regenerate with --write-baselines")
        return
    ref = json.loads(BASELINES.read_text()).get("serve_load")
    if ref is None:
        fail("baselines: no 'serve_load' section — regenerate with "
             "--write-baselines")
        return
    cur = serve_structure_of(report)
    for field in ("readers", "writers", "duration_ms", "burst"):
        if ref.get(field) != cur[field]:
            fail(f"baselines: serve_load {field} drifted {ref.get(field)} -> "
                 f"{cur[field]} — the load mix changed, numbers not comparable")
    if ref.get("read_p99_ms", 0) > 0:
        r = cur["read_p99_ms"] / ref["read_p99_ms"]
        if r > TIMING_BAND:
            fail(f"baselines: read p99 regressed {r:.1f}x vs baseline "
                 f"({ref['read_p99_ms']:.3f} -> {cur['read_p99_ms']:.3f} ms)")
    if ref.get("read_throughput_per_sec", 0) > 0:
        r = cur["read_throughput_per_sec"] / ref["read_throughput_per_sec"]
        if r < 1.0 / TIMING_BAND:
            fail(f"baselines: read throughput collapsed to {r:.2f}x of baseline "
                 f"({ref['read_throughput_per_sec']:.0f} -> "
                 f"{cur['read_throughput_per_sec']:.0f}/s)")


def merge_baselines(key, value):
    """Rewrite one section of the baselines file, preserving the others."""
    base = json.loads(BASELINES.read_text()) if BASELINES.exists() else {}
    if key is None:
        base.update(value)
    else:
        base[key] = value
    BASELINES.write_text(json.dumps(base, indent=2) + "\n")
    print(f"wrote {BASELINES}")


def run_serve_checks(report, write):
    check_serve_schema(report)
    if not failures:
        check_serve_gates(report)
        if write:
            merge_baselines("serve_load", serve_structure_of(report))
        else:
            check_serve_baselines(report)
    if failures:
        return 1
    print(f"check_bench: all serve-load gates pass "
          f"({report['read']['count']} reads @ "
          f"{report['read']['throughput_per_sec']:.0f}/s "
          f"p99 {report['read']['p99_ms']:.2f} ms, "
          f"{report['mutate']['count']} mutates, "
          f"{report['counters']['coalesce_flushes']} flushes for "
          f"{report['counters']['coalesced_updates']} updates)")
    return 0


CHAOS_ROW_FIELDS = ("seed", "resolves", "torn_lines", "clean_shutdown",
                    "exactly_once", "matches_baseline", "final_digest")
CHAOS_MIN_SEEDS = 8


def check_chaos_net(report):
    """Gates for BENCH_chaos_net.json (the chaos_net drill binary): every
    seeded fault schedule must have converged to the fault-free baseline —
    exactly-once mutations, zero torn lines, clean shutdown, identical
    final-state digest. The report carries only deterministic fields, so
    bench_smoke.sh separately cmp's two runs byte-for-byte."""
    for key in ("bench", "quick", "config", "baseline", "schedules",
                "failures"):
        if key not in report:
            fail(f"schema: missing top-level key {key!r}")
    if failures:
        return
    rows = report["schedules"]
    if len(rows) < CHAOS_MIN_SEEDS:
        fail(f"schema: only {len(rows)} schedules; need >= {CHAOS_MIN_SEEDS}")
    if report["config"].get("seeds") != len(rows):
        fail(f"schema: config.seeds {report['config'].get('seeds')} != "
             f"{len(rows)} schedule rows")
    base_digest = report["baseline"].get("final_digest")
    if not base_digest:
        fail("schema: baseline.final_digest missing")
    if report["failures"] != 0:
        fail(f"gates: {report['failures']} schedule(s) self-reported failure")
    for row in rows:
        for key in CHAOS_ROW_FIELDS:
            if key not in row:
                fail(f"schema: schedule row missing {key!r}: {row}")
        seed = row.get("seed", "?")
        if row.get("torn_lines", 1) != 0:
            fail(f"gates: seed {seed} saw {row['torn_lines']} torn line(s)")
        if not row.get("clean_shutdown"):
            fail(f"gates: seed {seed} did not shut the daemon down cleanly")
        if not row.get("exactly_once"):
            fail(f"gates: seed {seed} lost or double-applied a mutation "
                 f"({row.get('resolves')} resolves vs baseline "
                 f"{report['baseline'].get('resolves')})")
        if not row.get("matches_baseline") or row.get("final_digest") != base_digest:
            fail(f"gates: seed {seed} final state diverged from the "
                 f"fault-free baseline ({row.get('final_digest')} vs "
                 f"{base_digest})")


def run_chaos_checks(report):
    check_chaos_net(report)
    if failures:
        return 1
    print(f"check_bench: all chaos-net gates pass "
          f"({len(report['schedules'])} fault schedules converged to "
          f"digest {report['baseline']['final_digest']})")
    return 0


def main():
    args = sys.argv[1:]
    write = "--write-baselines" in args
    paths = [a for a in args if not a.startswith("--")]
    if not paths:
        print("usage: check_bench.py BENCH_eval.json|BENCH_replay.json|"
              "BENCH_serve.json [--write-baselines]", file=sys.stderr)
        return 2
    report = json.loads(Path(paths[0]).read_text())

    if report.get("bench") == "replay":
        code = run_replay_checks(report)
        if failures:
            print(f"check_bench: {len(failures)} gate(s) failed:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
        return code

    if report.get("bench") == "chaos_net":
        code = run_chaos_checks(report)
        if failures:
            print(f"check_bench: {len(failures)} gate(s) failed:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
        return code

    if report.get("bench") == "serve_load":
        code = run_serve_checks(report, write)
        if failures:
            print(f"check_bench: {len(failures)} gate(s) failed:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
        return code

    check_schema(report)
    if not failures:
        check_perf_gates(report)
        if write:
            merge_baselines(None, structure_of(report))
        else:
            check_baselines(report)

    if failures:
        print(f"check_bench: {len(failures)} gate(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"check_bench: all perf gates pass "
          f"({len(report['eval_cases'])} eval, {len(report['fused'])} fused, "
          f"{len(report['solver_cases'])} solver cases; "
          f"obs ratio {report['obs']['overhead_ratio']:.4f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
