# Gnuplot: accuracy vs capacity — paper Figure 2.
# Usage: cargo run --release -p nws-bench --bin fig2 | sed -n '/^theta,/,$p' > fig2.csv
#        gnuplot -e "csv='fig2.csv'" scripts/plot_fig2.gp > fig2.svg
set terminal svg size 720,480 font "Helvetica,13"
set datafile separator ","
if (!exists("csv")) csv = "fig2.csv"
set logscale x
set xlabel "resource constraint theta (sampled packets / interval)"
set ylabel "average accuracy"
set key bottom right
plot csv using 1:2 skip 1 with linespoints lw 2 title "average, all links", \
     csv using 1:3 skip 1 with linespoints lw 2 title "worst OD, all links", \
     csv using 1:4 skip 1 with linespoints lw 2 title "best OD, all links", \
     csv using 1:5 skip 1 with linespoints lw 2 dt 2 title "average, UK links only", \
     csv using 1:6 skip 1 with linespoints lw 2 dt 2 title "worst OD, UK links only", \
     csv using 1:7 skip 1 with linespoints lw 2 dt 2 title "best OD, UK links only"
