//! The [`Strategy`] trait and the primitive strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `sample` either yields a value or rejects the attempt (`None`, used by
/// `prop_filter`), and the runner retries on rejection.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value, or `None` to reject this attempt.
    fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `f`; `reason` labels the rejection.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _reason: reason.into(),
            f,
        }
    }

    /// Chains a dependent strategy generation through `f`.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> Option<S2::Value> {
        self.inner.sample(rng).and_then(|v| (self.f)(v).sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// A boxed sampling closure — one arm of a [`Union`].
type UnionArm<T> = Box<dyn Fn(&mut StdRng) -> Option<T>>;

/// Uniform choice among boxed strategies of one value type — the expansion
/// target of [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Creates an empty union; [`prop_oneof!`](crate::prop_oneof) pushes the
    /// arms.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn push(&mut self, arm: impl Fn(&mut StdRng) -> Option<T> + 'static) {
        self.arms.push(Box::new(arm));
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> Option<T> {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let arm = rng.random_range(0..self.arms.len());
        (self.arms[arm])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Characters used by the string strategy: printable ASCII plus a few
/// multibyte code points to exercise UTF-8 handling.
const STRING_CHARS: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1', '2',
    '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C', 'D', 'E',
    'K', 'L', 'N', 'S', 'T', 'U', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'k',
    'l', 'n', 'o', 's', 't', 'u', 'z', '{', '|', '}', '~', 'é', 'Ω', '中', '🦀',
];

/// String literals act as strategies. Upstream proptest interprets them as
/// regexes; this shim ignores the pattern and produces arbitrary printable
/// text (the workspace only uses totality patterns like `"\\PC*"`).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> Option<String> {
        let len = rng.random_range(0..64usize);
        Some(
            (0..len)
                .map(|_| STRING_CHARS[rng.random_range(0..STRING_CHARS.len())])
                .collect(),
        )
    }
}

/// Marker for types with a canonical "any value" strategy.
pub trait ArbitraryValue: Debug + Sized {
    /// Samples an unconstrained value.
    fn sample_any(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn sample_any(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn sample_any(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl ArbitraryValue for f64 {
    fn sample_any(rng: &mut StdRng) -> Self {
        // Finite, wide-range values; upstream generates specials too, but
        // the workspace only uses `any::<u64>()` — this is a safety net.
        let magnitude = rng.random_range(-300.0..300.0f64);
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(magnitude)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::sample_any(rng))
    }
}

/// An unconstrained value of `T`, e.g. `any::<u64>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}
