//! The test runner: drives a strategy through the configured number of
//! cases, tracking rejections and reporting the first failure verbatim.

use crate::config::ProptestConfig;
use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion — the whole test fails.
    Fail(String),
    /// The case was discarded (`prop_assume!`) — the runner retries.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A whole-test failure: an assertion failure plus the input that caused it,
/// or rejection-budget exhaustion.
#[derive(Debug, Clone)]
pub struct TestError {
    message: String,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestError {}

/// Drives strategies through test bodies. See the crate docs for the
/// differences from upstream (deterministic per-test seeding, no shrinking).
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// A runner with a fixed default seed.
    pub fn new(config: ProptestConfig) -> Self {
        Self::with_seed(config, 0x9E37_79B9_7F4A_7C15)
    }

    /// A runner seeded from a test name (what [`proptest!`](crate::proptest)
    /// generates) so distinct tests draw decorrelated streams.
    pub fn with_name(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        Self::with_seed(config, h)
    }

    /// A runner with an explicit seed.
    pub fn with_seed(config: ProptestConfig, seed: u64) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs `test` against values from `strategy` until the configured case
    /// count passes, a case fails, or the rejection budget is exhausted.
    ///
    /// # Errors
    /// The first assertion failure (with the generated input, unshrunk), or
    /// rejection-budget exhaustion.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Result<(), TestError> {
        let cases = self.config.effective_cases();
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < cases {
            if rejects > self.config.max_global_rejects {
                return Err(TestError {
                    message: format!(
                        "too many global rejects ({rejects}) after {passed} passed cases; \
                         raise max_global_rejects or loosen prop_assume!/prop_filter"
                    ),
                });
            }
            let Some(value) = strategy.sample(&mut self.rng) else {
                rejects += 1;
                continue;
            };
            // Capture the input before the body consumes it: there is no
            // Clone bound, and on failure we must echo what was generated.
            let repr = format!("{:?}", value);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => rejects += 1,
                Err(TestCaseError::Fail(msg)) => {
                    return Err(TestError {
                        message: format!(
                            "proptest case failed after {passed} passed cases: {msg}\n\
                             input (unshrunk): {repr}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn failing_case_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let err = runner
            .run(&(0..100u64,), |(n,)| {
                prop_assert!(n < 90, "n too big: {n}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.to_string().contains("n too big"));
        assert!(err.to_string().contains("input (unshrunk)"));
    }

    #[test]
    fn rejection_budget_enforced() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 10,
            max_global_rejects: 5,
        });
        let err = runner
            .run(&(0..100u64,), |(_n,)| Err(TestCaseError::reject("always")))
            .unwrap_err();
        assert!(err.to_string().contains("too many global rejects"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0.0..1.0f64, v in crate::collection::vec(0..10usize, 1..5)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1usize), Just(2usize), 3..10usize]) {
            prop_assert!((1..10).contains(&v));
        }

        #[test]
        fn tuple_destructuring((a, b) in (0..5usize, 5..10usize), c in any::<u64>()) {
            prop_assert!(a < 5 && (5..10).contains(&b));
            let _ = c;
        }

        #[test]
        fn string_strategy_total(s in "\\PC*") {
            prop_assert!(s.chars().count() < 64);
        }
    }
}
