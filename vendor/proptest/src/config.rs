//! Runner configuration.

/// Configuration for a [`TestRunner`](crate::TestRunner).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
    /// Cap on rejected attempts (`prop_assume!`/`prop_filter`) across the
    /// whole run before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A default configuration with the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The case count, honoring a `PROPTEST_CASES` environment override.
    pub(crate) fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => n,
            None => self.cases,
        }
    }
}
