//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive `[min, max]` length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
