//! Offline vendored subset of the `proptest` API.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate re-implements the slice of proptest the test suite uses: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, range/tuple/`Just`/
//! string/collection strategies, `any::<T>()`, the [`proptest!`] macro with
//! `#![proptest_config]`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case is reported verbatim (values are
//!   printed with `Debug`), not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its own
//!   name, so CI runs are reproducible; set `PROPTEST_CASES` to scale the
//!   number of cases without touching code.
//! * String strategies ignore the regex pattern and generate arbitrary
//!   printable text (the workspace only uses `"\\PC*"`-style totality
//!   patterns).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

mod config;
mod runner;

pub use config::ProptestConfig;
pub use runner::{TestCaseError, TestCaseResult, TestError, TestRunner};
pub use strategy::{any, Any, ArbitraryValue, Just, Strategy, Union};

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };

    /// Mirrors `proptest::prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case is reported as failing (with the generated inputs) instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, $($fmt)+);
    }};
}

/// Discards the current case (it counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut union = $crate::Union::new();
        $(
            {
                let strategy = $strategy;
                union.push(move |rng| $crate::Strategy::sample(&strategy, rng));
            }
        )+
        union
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner =
                $crate::TestRunner::with_name(config, stringify!($name));
            let strategy = ($($strategy,)+);
            let outcome = runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(err) = outcome {
                ::core::panic!("{}", err);
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}
