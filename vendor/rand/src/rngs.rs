//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: **xoshiro256++**
/// (Blackman & Vigna), seeded via SplitMix64. Fast, passes BigCrush, and
/// entirely dependency-free. Not bit-compatible with upstream `rand`'s
/// `StdRng` (ChaCha12) — see the crate docs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
        }
        StdRng { s }
    }
}

/// Alias kept for parity with `rand::rngs::SmallRng` call sites.
pub type SmallRng = StdRng;
