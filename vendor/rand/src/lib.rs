//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate re-implements exactly the surface the workspace uses — seedable
//! deterministic generators, uniform `random::<T>()`, and `random_range`
//! over primitive ranges — with the same trait/module layout as `rand` 0.9
//! (`Rng`, `RngCore`, `SeedableRng`, `rngs::StdRng`). Streams are *not*
//! bit-compatible with upstream `rand`; all workspace code treats seeded
//! generators as an opaque deterministic source, never as a fixed stream.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`/`u32` words — the object-safe core trait.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// the full domain for integers and `bool`, uniform in `[0, 1)` for
    /// floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer sampling in `[0, span)` via the widening-multiply
/// method (bias < 2⁻⁶⁴·span, negligible at workspace scales).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Float rounding can land exactly on `end`; fold it back inside.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the standard
    /// construction) and builds the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3.0..7.0);
            assert!((3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_uniform_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
