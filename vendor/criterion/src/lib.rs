//! Offline vendored subset of the Criterion benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! `Criterion`/`BenchmarkGroup`/`Bencher` surface the workspace's benches
//! use, backed by plain `std::time::Instant` timing: per benchmark it runs a
//! short calibration, then `sample_size` timed batches, and prints the
//! per-iteration mean and min. No warmup modeling, outlier analysis, or
//! HTML reports — for trend-grade numbers use `crates/bench`'s
//! `eval_bench` harness, which this workspace tracks in CI.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark measurement, split across samples.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(400);

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier built from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter, e.g. `group/32`.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with a function name and a parameter, e.g. `group/solve/32`.
    pub fn new(function: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    /// Iterations per timed batch, set by calibration.
    iters_per_sample: u64,
    /// Per-sample durations, filled by `iter`.
    samples: Vec<Duration>,
    /// Remaining samples to record.
    remaining: usize,
    calibrating: bool,
}

impl Bencher {
    /// Times `body` — the driver calls the closure repeatedly; user code
    /// calls `iter` exactly once per invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.calibrating {
            // Determine how many iterations fill a sample's time budget.
            let budget = TARGET_MEASURE_TIME / self.samples.capacity().max(1) as u32;
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(body());
                }
                let elapsed = start.elapsed();
                if elapsed >= budget || iters >= 1 << 20 {
                    // Sub-nanosecond bodies round to per_iter == 0 under
                    // integer division; clamp after dividing so the budget
                    // division below can never hit zero.
                    let per_iter = (elapsed.as_nanos() / iters as u128).max(1);
                    self.iters_per_sample = (budget.as_nanos() / per_iter).clamp(1, 1 << 20) as u64;
                    return;
                }
                iters *= 2;
            }
        }
        if self.remaining == 0 {
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(body());
        }
        self.samples.push(start.elapsed());
        self.remaining -= 1;
    }
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        remaining: 0,
        calibrating: true,
    };
    f(&mut bencher); // calibration pass
    bencher.calibrating = false;
    bencher.remaining = sample_size;
    while bencher.remaining > 0 {
        let before = bencher.remaining;
        f(&mut bencher);
        if bencher.remaining == before {
            // The closure did not call iter(); avoid an infinite loop.
            break;
        }
    }
    let per_iter_ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    if per_iter_ns.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<50} mean {:>12} min {:>12}  ({} samples x {} iters)",
        format_ns(mean),
        format_ns(min),
        per_iter_ns.len(),
        bencher.iters_per_sample,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions; mirrors Criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
